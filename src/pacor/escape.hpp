#pragma once

#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/min_cost_flow.hpp"
#include "grid/obstacle_map.hpp"
#include "pacor/work.hpp"

namespace pacor::core {

/// Outcome of one simultaneous escape-routing pass.
struct EscapeOutcome {
  int requested = 0;
  int routedCount = 0;
  std::vector<std::size_t> failed;  ///< indices into the cluster span
  std::int64_t flowCost = 0;        ///< total channel length of escape paths
  /// Seconds spent building the flow network (or, for a warm session
  /// round, applying the per-round delta) and solving it. Measured
  /// unconditionally so the pipeline can report cumulative flow time as
  /// time.escape_flow_{build,run}_s metrics without a trace session.
  double flowBuildSeconds = 0.0;
  double flowRunSeconds = 0.0;
  /// Solver-effort counters for this pass (Dijkstra passes, augmentations,
  /// queue traffic, ...), surfaced as `escape.flow.*` metrics and the
  /// `search.escape` block of bench_routing.
  graph::MinCostFlow::Counters flowCounters;
};

/// Simultaneous escape routing of all internally-routed clusters to the
/// control pins via the paper's min-cost flow formulation (Sec. 5):
/// routing cells are node-split with unit capacity (constraint 12 -- no
/// crossings), each cluster feeds flow out of its tap cells (constraints
/// 6/10: the Steiner root for matched trees, the middle point for matched
/// pairs, any tree cell for plain clusters), non-pin boundary cells are
/// blocked (constraint 8), and every control pin accepts at most one path.
/// Min-cost max-flow realizes the beta-dominant objective exactly:
/// maximize the routed count, then minimize total channel length.
///
/// Successful clusters get escapePath (tap ... pin) committed into
/// `obstacles` and their pin assigned. Already-escaped clusters (pin >= 0)
/// are left untouched and their pins stay reserved.
/// `fastEscape` enables the solver's multi-augmentation/bidirectional fast
/// mode (MinCostFlow::setFastSsp): same (flow, cost) optimum, but
/// equal-cost ties may route along different paths, so it is opt-in and
/// validated by the oracle rather than golden hashes.
EscapeOutcome escapeRoute(const chip::Chip& chip, grid::ObstacleMap& obstacles,
                          std::span<WorkCluster*> clusters,
                          bool fastEscape = false);

/// Persistent escape-flow solver that survives across pipeline rip-up
/// rounds. Constructed once per design, it lays down the full node-split
/// flow network over *every* cell (blocked cells are disabled nodes, so
/// their arcs are zero-capacity rather than absent) plus one sink arc per
/// control pin, freezes that as the solver's CSR, and then serves each
/// escape round by applying deltas:
///
///  * cells whose occupancy changed since the last round (committed escape
///    paths, rip-ups, re-routed trees) are disabled/enabled in place;
///  * pin arcs are re-priced to 1/0 as pins are consumed or released;
///  * per-round cluster supply and tap arcs go to the solver's overlay and
///    are truncated again at the start of the next round;
///  * the solve itself is a warm rerun() -- no node renumbering, no arc
///    re-insertion, no CSR rebuild.
///
/// The delta rules are chosen so the positive-capacity arc set, and its
/// per-node scan order, is identical to what escapeRoute() builds from
/// scratch each round: zero-capacity arcs relax exactly like absent arcs,
/// overlay arcs scan after a node's CSR arcs (their insertion-order
/// position), and cluster virtual nodes are renumbered per round in
/// pending order. Solutions are therefore bit-identical to the
/// from-scratch path; only the build work disappears.
class EscapeFlowSession {
 public:
  /// Snapshots the current obstacle state; later rounds diff against it.
  /// `fastEscape` selects the solver's opt-in fast mode for every round.
  EscapeFlowSession(const chip::Chip& chip, grid::ObstacleMap& obstacles,
                    bool fastEscape = false);

  /// True when this session's frozen network can serve `chip`: same grid
  /// cell count, identical control pins, and no more valves than the
  /// network was sized for. Callers holding a session across requests
  /// (serve::DesignContext, RouteResources::escapeSession) reset the
  /// session when this turns false -- valve moves and obstacle edits keep
  /// it true, pin or grid edits do not.
  bool compatibleWith(const chip::Chip& chip) const noexcept;

  /// Re-targets the session at another request's chip + obstacle map
  /// (compatibleWith must hold). The next route() call diffs the free
  /// mirror against the new map -- exactly the per-round occupancy-diff
  /// path -- so a rebound session stays bit-identical to a session built
  /// fresh on the new map. `fastEscape` may change per request.
  void rebind(const chip::Chip& chip, grid::ObstacleMap& obstacles, bool fastEscape);

  /// Drop-in replacement for escapeRoute(): one escape pass over the
  /// given clusters against the session's obstacle map.
  EscapeOutcome route(std::span<WorkCluster*> clusters);

  /// Warm-restart counters for the `escape.flow.*` metrics.
  struct Stats {
    int coldBuilds = 0;       ///< full network constructions (1 per session)
    int rounds = 0;           ///< route() calls served
    int warmRounds = 0;       ///< rounds after the first (delta-applied)
    std::int64_t warmDeltaCells = 0;  ///< cells toggled across warm rounds
    std::int64_t warmDeltaArcs = 0;   ///< overlay arcs added across warm rounds
    std::int64_t persistentArcs = 0;  ///< arcs in the frozen network
  };
  const Stats& stats() const { return stats_; }

 private:
  const chip::Chip* chip_;
  grid::ObstacleMap* obstacles_;
  graph::MinCostFlow flow_;
  std::size_t valveCapacity_ = 0;  ///< cluster-node slots in the network
  std::size_t clusterBase_ = 0;
  std::size_t source_ = 0;
  std::size_t sink_ = 0;
  std::size_t persistentEdges_ = 0;
  std::vector<std::size_t> splitEdge_;  ///< per cell
  std::vector<std::pair<std::int32_t, std::int32_t>> stepArc_;  ///< per edge
  std::vector<std::size_t> pinEdge_;    ///< per chip pin index
  std::vector<std::uint8_t> freeMirror_;  ///< last-synced isFree() per cell
  std::vector<std::int32_t> nextCell_;    ///< decompose scratch, kept at -1
  std::unordered_map<Point, chip::PinId> pinAt_;
  Stats stats_;
  double ctorSeconds_ = 0.0;  ///< charged to the first round's build time
  bool firstRound_ = true;
};

/// Sequential greedy baseline for the same problem: clusters escape one at
/// a time via multi-target A* to the nearest free pin, each committed path
/// becoming an obstacle for the rest. This is what the paper's min-cost
/// flow formulation replaces -- the greedy order can block later clusters
/// and pick globally suboptimal pins; used by the escape ablation bench.
EscapeOutcome escapeRouteSequential(const chip::Chip& chip,
                                    grid::ObstacleMap& obstacles,
                                    std::span<WorkCluster*> clusters);

}  // namespace pacor::core
