#pragma once

#include <functional>
#include <vector>

#include "grid/obstacle_map.hpp"
#include "pacor/work.hpp"

namespace pacor::util {
class ThreadPool;
}

namespace pacor::core {

/// Routes one plain (no length-matching) cluster as a routed spanning
/// tree: iterated multi-source / multi-target A* grows the connected
/// component valve by valve, the detailed-routing analogue of sequential
/// MST edge routing with point-to-path search (paper Sec. 3, "MST-based
/// cluster routing"). On success the channels are committed to
/// `obstacles` under wc.net, tapCells covers the whole tree, and
/// wc.internallyRouted is set. On failure every cell of the cluster
/// (including partial paths) is released and false is returned.
bool routePlainCluster(const chip::Chip& chip, grid::ObstacleMap& obstacles,
                       WorkCluster& wc);

/// Routes a plain cluster with de-clustering on failure (paper Fig. 2):
/// when the tree cannot be completed, the cluster is median-split into
/// two halves and each half is retried recursively, bottoming out at
/// singletons (which need no internal routing). `allocateNet` provides
/// fresh net ids for the split parts; the input cluster is replaced by
/// the returned parts (1 part = no split happened).
std::vector<WorkCluster> routeWithDeclustering(const chip::Chip& chip,
                                               grid::ObstacleMap& obstacles,
                                               WorkCluster wc,
                                               const std::function<grid::NetId()>& allocateNet,
                                               int* declusterCount = nullptr);

/// Stage-3 driver: routes every not-yet-routed cluster of `clusters`
/// (internally routed ones pass through untouched) and returns the final
/// cluster list, with declustered parts expanded in place.
///
/// With a multi-thread `pool`, the tree growth of all pending clusters
/// first runs speculatively in parallel against the stage-start occupancy
/// (a pure search -- no map mutation), then commits serially in cluster
/// order. A speculative tree is accepted only when no cell any of its
/// searches labeled was occupied by an earlier commit; otherwise the
/// cluster is re-routed on the live map exactly as the serial code would.
/// Commits never free a stage-start-occupied cell, so an accepted tree is
/// bit-identical to what the serial pass produces, cluster for cluster.
std::vector<WorkCluster> routeClustersStage(const chip::Chip& chip,
                                            grid::ObstacleMap& obstacles,
                                            std::vector<WorkCluster> clusters,
                                            const std::function<grid::NetId()>& allocateNet,
                                            int* declusterCount = nullptr,
                                            util::ThreadPool* pool = nullptr);

}  // namespace pacor::core
