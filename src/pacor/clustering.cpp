#include "pacor/clustering.hpp"

#include <algorithm>

#include "graph/clique_partition.hpp"

namespace pacor::core {

std::vector<ClusterSpec> clusterValves(const chip::Chip& chip) {
  std::vector<ClusterSpec> out;
  std::vector<bool> taken(chip.valves.size(), false);

  // Given clusters (with or without the constraint) pass through intact.
  for (const chip::ValveCluster& given : chip.givenClusters) {
    ClusterSpec spec;
    spec.valves = given.valves;
    spec.lengthMatched = given.lengthMatched;
    for (const chip::ValveId v : given.valves) taken[static_cast<std::size_t>(v)] = true;
    out.push_back(std::move(spec));
  }

  // Remaining valves: clique partition of the induced compatibility graph.
  std::vector<chip::ValveId> rest;
  for (std::size_t v = 0; v < chip.valves.size(); ++v)
    if (!taken[v]) rest.push_back(static_cast<chip::ValveId>(v));
  if (rest.empty()) return out;

  graph::AdjacencyMatrix sub(rest.size());
  for (std::size_t i = 0; i < rest.size(); ++i)
    for (std::size_t j = i + 1; j < rest.size(); ++j) {
      const auto& a = chip.valve(rest[i]).sequence;
      const auto& b = chip.valve(rest[j]).sequence;
      if (a.compatibleWith(b)) sub.addEdge(i, j);
    }

  // Few enough free valves: solve minimum clique partition exactly (each
  // clique saved is a control pin saved); greedy heuristic otherwise.
  for (const auto& clique : graph::cliquePartitionAuto(sub)) {
    ClusterSpec spec;
    spec.valves.reserve(clique.size());
    for (const std::size_t local : clique) spec.valves.push_back(rest[local]);
    std::sort(spec.valves.begin(), spec.valves.end());
    out.push_back(std::move(spec));
  }
  return out;
}

}  // namespace pacor::core
