#pragma once

#include <span>
#include <vector>

#include "geom/point.hpp"

namespace pacor::dme {

using geom::Point;

/// Node of a binary connection topology over a cluster's valves (sinks).
/// Leaves reference a sink index; internal nodes have two children.
struct TopologyNode {
  int left = -1;
  int right = -1;
  int sink = -1;  ///< leaf: index into the sink array; -1 for internal

  bool isLeaf() const noexcept { return sink >= 0; }
};

/// Binary tree over sinks; node 0..n-1 storage with an explicit root.
struct Topology {
  std::vector<TopologyNode> nodes;
  int root = -1;

  std::size_t size() const noexcept { return nodes.size(); }
  std::size_t leafCount() const noexcept;
  /// Depth-first check: every sink appears exactly once below the root.
  bool coversAllSinks(std::size_t sinkCount) const;
};

/// Balanced-bipartition topology generation (paper Sec. 4.1; Chao et al.'s
/// BB approach with unit sink capacitance): recursively split the sink set
/// into two halves of near-equal cardinality minimizing the sum of the
/// halves' Manhattan diameters. Exact (exhaustive) below a size cutoff,
/// median-axis split above it. The result is a balanced binary tree when
/// the sink count is a power of two.
Topology balancedBipartition(std::span<const Point> sinks);

/// Manhattan diameter of a point set (max pairwise distance).
std::int64_t manhattanDiameter(std::span<const Point> points);

}  // namespace pacor::dme
