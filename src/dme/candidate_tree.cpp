#include "dme/candidate_tree.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <optional>
#include <unordered_set>

#include "geom/tilted.hpp"
#include "trace/trace.hpp"

namespace pacor::dme {

using geom::TiltedRect;

std::vector<std::pair<int, int>> DmeCandidate::edges() const {
  std::vector<std::pair<int, int>> out;
  for (std::size_t i = 0; i < topo.nodes.size(); ++i) {
    const TopologyNode& n = topo.nodes[i];
    if (n.isLeaf()) continue;
    out.emplace_back(static_cast<int>(i), n.left);
    out.emplace_back(static_cast<int>(i), n.right);
  }
  return out;
}

std::vector<std::vector<int>> DmeCandidate::sinkToRootPaths() const {
  std::vector<int> parent(topo.nodes.size(), -1);
  std::vector<int> leafOf;
  for (std::size_t i = 0; i < topo.nodes.size(); ++i) {
    const TopologyNode& n = topo.nodes[i];
    if (!n.isLeaf()) {
      parent[static_cast<std::size_t>(n.left)] = static_cast<int>(i);
      parent[static_cast<std::size_t>(n.right)] = static_cast<int>(i);
    }
  }
  std::size_t sinkCount = 0;
  for (const TopologyNode& n : topo.nodes)
    if (n.isLeaf()) sinkCount = std::max(sinkCount, static_cast<std::size_t>(n.sink) + 1);

  std::vector<std::vector<int>> paths(sinkCount);
  for (std::size_t i = 0; i < topo.nodes.size(); ++i) {
    const TopologyNode& n = topo.nodes[i];
    if (!n.isLeaf()) continue;
    std::vector<int>& path = paths[static_cast<std::size_t>(n.sink)];
    for (int v = static_cast<int>(i); v != -1; v = parent[static_cast<std::size_t>(v)])
      path.push_back(v);
  }
  return paths;
}

geom::Rect DmeCandidate::boundingBox() const {
  geom::Rect box{{0, 0}, {-1, -1}};  // empty
  for (const Point p : embed) box = box.unionWith(geom::Rect::fromPoint(p));
  return box;
}

namespace {

/// Real-lattice XY points (doubled coords both even) covered by a doubled
/// tilted region, sampled with an even stride up to maxCount.
std::vector<Point> realPointsInRegion(const TiltedRect& region, std::size_t maxCount) {
  std::vector<Point> out;
  if (region.empty() || maxCount == 0) return out;
  std::vector<Point> all;
  for (std::int32_t u = region.lo.x; u <= region.hi.x; ++u) {
    for (std::int32_t v = region.lo.y; v <= region.hi.y; ++v) {
      if (((u + v) % 2 + 2) % 2 != 0) continue;
      const Point doubled = geom::fromTilted({u, v});
      if (doubled.x % 2 != 0 || doubled.y % 2 != 0) continue;
      all.push_back({doubled.x / 2, doubled.y / 2});
      if (all.size() > 4096) break;  // plenty for sampling
    }
    if (all.size() > 4096) break;
  }
  if (all.empty()) return out;
  if (all.size() <= maxCount) return all;
  for (std::size_t k = 0; k < maxCount; ++k)
    out.push_back(all[k * (all.size() - 1) / (maxCount - 1)]);
  out.erase(std::unique(out.begin(), out.end(),
                        [](Point a, Point b) { return a == b; }),
            out.end());
  return out;
}

/// Nearest real-lattice cell to a desired tilted (doubled) point,
/// preferring points inside the region; falls back to plain rounding
/// (the half-unit snap of Lemma 1).
Point snapToRealLattice(const TiltedRect& region, Point desiredTilted) {
  const Point clamped = region.clampTilted(desiredTilted);
  for (std::int32_t r = 0; r <= 3; ++r) {
    for (std::int32_t du = -r; du <= r; ++du) {
      for (std::int32_t dv = -r; dv <= r; ++dv) {
        if (std::max(std::abs(du), std::abs(dv)) != r) continue;
        const Point t{clamped.x + du, clamped.y + dv};
        if (!region.containsTilted(t)) continue;
        if (((t.x + t.y) % 2 + 2) % 2 != 0) continue;
        const Point doubled = geom::fromTilted(t);
        if (doubled.x % 2 == 0 && doubled.y % 2 == 0)
          return {doubled.x / 2, doubled.y / 2};
      }
    }
  }
  // Off-grid merging segment: round the doubled midpoint outward.
  const Point t = clamped;
  const std::int32_t x2 = t.x - t.y;  // 2 * doubled x
  const std::int32_t y2 = t.x + t.y;
  const auto roundTo4 = [](std::int32_t v) {
    return static_cast<std::int32_t>(std::lround(static_cast<double>(v) / 4.0));
  };
  return {roundTo4(x2), roundTo4(y2)};
}

/// Expanding-loop merging-node legalization (paper Sec. 4.1): scan
/// Chebyshev rings of increasing radius around the desired cell for a
/// routing-usable cell outside `forbidden`; the scan start rotates with
/// `rotation` to diversify candidates.
std::optional<Point> ringSearch(const grid::ObstacleMap& obstacles, grid::NetId net,
                                Point desired, int maxRadius, int rotation,
                                const std::unordered_set<Point>& forbidden) {
  const grid::Grid& g = obstacles.grid();
  const auto usable = [&](Point c) {
    return g.inBounds(c) && obstacles.isFreeFor(c, net) && !forbidden.contains(c);
  };
  if (usable(desired)) return desired;
  for (int r = 1; r <= maxRadius; ++r) {
    std::vector<Point> ring;
    ring.reserve(static_cast<std::size_t>(8 * r));
    for (std::int32_t dx = -r; dx <= r; ++dx) {
      ring.push_back({desired.x + dx, desired.y - r});
      ring.push_back({desired.x + dx, desired.y + r});
    }
    for (std::int32_t dy = -r + 1; dy <= r - 1; ++dy) {
      ring.push_back({desired.x - r, desired.y + dy});
      ring.push_back({desired.x + r, desired.y + dy});
    }
    const std::size_t start =
        static_cast<std::size_t>(rotation) % std::max<std::size_t>(1, ring.size());
    for (std::size_t k = 0; k < ring.size(); ++k) {
      const Point c = ring[(start + k) % ring.size()];
      if (usable(c)) return c;
    }
  }
  return std::nullopt;
}

struct Embedder {
  const grid::ObstacleMap& obstacles;
  grid::NetId net;
  std::span<const Point> sinks;
  const Topology& topo;
  const MergePlan& plan;
  const CandidateOptions& options;
  std::unordered_set<Point> sinkCells;

  /// Builds one candidate for a given root placement and variation index.
  std::optional<DmeCandidate> embed(Point rootCell, int variant) const {
    DmeCandidate cand;
    cand.topo = topo;
    cand.embed.assign(topo.nodes.size(), Point{});
    cand.targetHalfLen.assign(topo.nodes.size(), 0);

    const auto rootIdx = static_cast<std::size_t>(topo.root);
    const auto legalRoot =
        ringSearch(obstacles, net, rootCell, options.ringSearchRadius, variant, sinkCells);
    if (!legalRoot) return std::nullopt;
    cand.embed[rootIdx] = *legalRoot;

    // Parents precede children in descending index order (children-first
    // node layout), so one reverse sweep embeds top-down.
    for (std::size_t i = topo.nodes.size(); i-- > 0;) {
      const TopologyNode& n = topo.nodes[i];
      if (n.isLeaf()) {
        cand.embed[i] = sinks[static_cast<std::size_t>(n.sink)];
        continue;
      }
      const Point parentEmbed = cand.embed[i];
      for (const auto& [childIdx, target] :
           {std::pair{n.left, plan.nodes[i].edgeLeft},
            std::pair{n.right, plan.nodes[i].edgeRight}}) {
        const auto c = static_cast<std::size_t>(childIdx);
        cand.targetHalfLen[c] = target;
        if (topo.nodes[c].isLeaf()) {
          cand.embed[c] = sinks[static_cast<std::size_t>(topo.nodes[c].sink)];
          continue;
        }
        cand.embed[c] = placeChild(plan.nodes[c].region, parentEmbed, target,
                                   variant + static_cast<int>(c));
      }
    }

    // Legalize internal nodes against obstacles (leaves are the sinks).
    for (std::size_t i = 0; i < topo.nodes.size(); ++i) {
      if (topo.nodes[i].isLeaf()) continue;
      const auto legal = ringSearch(obstacles, net, cand.embed[i],
                                    options.ringSearchRadius,
                                    variant + static_cast<int>(i), sinkCells);
      if (!legal) return std::nullopt;
      cand.embed[i] = *legal;
    }

    finishEstimates(cand);
    return cand;
  }

  /// Chooses a child's merging node: the point of its merging region at
  /// distance as close to `target` (doubled) from the parent as possible,
  /// corner-diversified by `variant`.
  Point placeChild(const TiltedRect& region, Point parentEmbed, std::int64_t target,
                   int variant) const {
    const Point pt = geom::toTilted(parentEmbed * 2);
    const TiltedRect ball{{pt.x - static_cast<std::int32_t>(target),
                           pt.y - static_cast<std::int32_t>(target)},
                          {pt.x + static_cast<std::int32_t>(target),
                           pt.y + static_cast<std::int32_t>(target)}};
    const TiltedRect feasible = region.intersectWith(ball);
    const TiltedRect& pickFrom = feasible.empty() ? region : feasible;

    // Corners by distance from the parent, farthest first (uses up the
    // target length in straight wire instead of later detour).
    std::array<Point, 4> corners{Point{pickFrom.lo.x, pickFrom.lo.y},
                                 Point{pickFrom.lo.x, pickFrom.hi.y},
                                 Point{pickFrom.hi.x, pickFrom.lo.y},
                                 Point{pickFrom.hi.x, pickFrom.hi.y}};
    std::sort(corners.begin(), corners.end(), [&](Point a, Point b) {
      return geom::chebyshev(a, pt) > geom::chebyshev(b, pt);
    });
    const std::int64_t bestDist = geom::chebyshev(corners[0], pt);
    std::size_t ties = 1;
    while (ties < corners.size() && geom::chebyshev(corners[ties], pt) == bestDist) ++ties;
    const Point chosen = corners[static_cast<std::size_t>(variant) % ties];
    return snapToRealLattice(pickFrom, chosen);
  }

  void finishEstimates(DmeCandidate& cand) const {
    cand.totalEstimatedLength = 0;
    for (const auto& [p, c] : cand.edges())
      cand.totalEstimatedLength +=
          geom::manhattan(cand.embed[static_cast<std::size_t>(p)],
                          cand.embed[static_cast<std::size_t>(c)]);
    std::int64_t lo = std::numeric_limits<std::int64_t>::max();
    std::int64_t hi = 0;
    for (const auto& path : cand.sinkToRootPaths()) {
      std::int64_t len = 0;
      for (std::size_t k = 0; k + 1 < path.size(); ++k)
        len += geom::manhattan(cand.embed[static_cast<std::size_t>(path[k])],
                               cand.embed[static_cast<std::size_t>(path[k + 1])]);
      lo = std::min(lo, len);
      hi = std::max(hi, len);
    }
    cand.mismatchEstimate = (lo > hi) ? 0 : hi - lo;
  }
};

}  // namespace

std::vector<DmeCandidate> buildCandidateTrees(const grid::ObstacleMap& obstacles,
                                              grid::NetId net,
                                              std::span<const Point> sinks,
                                              const CandidateOptions& options) {
  trace::Span span("dme.build_candidates", "dme", trace::Level::kCluster);
  span.arg("sinks", static_cast<std::int64_t>(sinks.size()));
  std::vector<DmeCandidate> out;
  if (sinks.empty() || options.count <= 0) return out;

  const Topology topo = balancedBipartition(sinks);
  if (sinks.size() == 1) {
    DmeCandidate cand;
    cand.topo = topo;
    cand.embed = {sinks[0]};
    cand.targetHalfLen = {0};
    out.push_back(std::move(cand));
    span.arg("candidates", 1);
    return out;
  }
  const MergePlan plan = computeMergePlan(topo, sinks);

  Embedder embedder{obstacles, net, sinks, topo, plan, options, {}};
  embedder.sinkCells.insert(sinks.begin(), sinks.end());

  const TiltedRect& rootRegion = plan.nodes[static_cast<std::size_t>(topo.root)].region;
  std::vector<Point> rootCells =
      realPointsInRegion(rootRegion, static_cast<std::size_t>(options.count));
  // Root diversity: snap the region's extremes and center too (they may be
  // off the real lattice and thus missed by the exact sampler); distinct
  // roots are the main source of distinct candidate trees (Fig. 3).
  for (const Point t : {rootRegion.lo, rootRegion.hi,
                        Point{rootRegion.lo.x, rootRegion.hi.y},
                        Point{rootRegion.hi.x, rootRegion.lo.y},
                        Point{(rootRegion.lo.x + rootRegion.hi.x) / 2,
                              (rootRegion.lo.y + rootRegion.hi.y) / 2}}) {
    const Point snapped = snapToRealLattice(rootRegion, t);
    if (std::find(rootCells.begin(), rootCells.end(), snapped) == rootCells.end())
      rootCells.push_back(snapped);
  }

  int variant = 0;
  for (const Point rootCell : rootCells) {
    if (static_cast<int>(out.size()) >= options.count) break;
    auto cand = embedder.embed(rootCell, variant++);
    if (!cand) continue;
    const bool duplicate = std::any_of(out.begin(), out.end(), [&](const DmeCandidate& c) {
      return c.embed == cand->embed;
    });
    if (!duplicate) out.push_back(std::move(*cand));
  }
  // If diversity fell short (duplicates/obstacles), try extra variants on
  // the same root cells with rotated preferences.
  for (int extra = 1; extra <= 3 && static_cast<int>(out.size()) < options.count; ++extra) {
    for (const Point rootCell : rootCells) {
      if (static_cast<int>(out.size()) >= options.count) break;
      auto cand = embedder.embed(rootCell, variant++);
      if (!cand) continue;
      const bool duplicate =
          std::any_of(out.begin(), out.end(), [&](const DmeCandidate& c) {
            return c.embed == cand->embed;
          });
      if (!duplicate) out.push_back(std::move(*cand));
    }
  }
  span.arg("candidates", static_cast<std::int64_t>(out.size()));
  return out;
}

}  // namespace pacor::dme
