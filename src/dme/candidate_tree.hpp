#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dme/merging.hpp"
#include "dme/topology.hpp"
#include "geom/rect.hpp"
#include "grid/obstacle_map.hpp"

namespace pacor::dme {

/// One embedded candidate Steiner tree for a cluster (paper Fig. 3): the
/// shared topology plus a concrete merging-node placement per internal
/// node. Different candidates come from different merging-node choices on
/// the merging segments; each satisfies the length-matching target up to
/// grid rounding and obstacle-avoidance displacement, which the final
/// detour stage equalizes.
struct DmeCandidate {
  Topology topo;
  std::vector<Point> embed;                ///< per topology node, grid coords
  std::vector<std::int64_t> targetHalfLen; ///< per node: target wire to parent
                                           ///< (doubled units; root = 0)
  std::int64_t mismatchEstimate = 0;       ///< Delta-L over full paths (Eq. 1),
                                           ///< embedded Manhattan estimate
  std::int64_t totalEstimatedLength = 0;   ///< sum of embedded edge lengths

  /// (parent, child) topology-node index pairs of all tree edges.
  std::vector<std::pair<int, int>> edges() const;
  /// Per sink: node indices from the leaf up to the root (full path).
  std::vector<std::vector<int>> sinkToRootPaths() const;
  /// Bounding box over all embedded nodes.
  geom::Rect boundingBox() const;
};

struct CandidateOptions {
  int count = 5;             ///< candidate trees per cluster
  int ringSearchRadius = 64; ///< obstacle-avoid expanding-loop cap (cells)
};

/// Builds up to `options.count` candidate trees for the sinks of one
/// cluster: balanced-bipartition topology, one shared bottom-up merge
/// plan, then diversified top-down embeddings (varying root placement and
/// corner preferences) with obstacle-avoiding merging-node search on
/// `obstacles` (cells owned by `net` count as usable). Candidates are
/// deduplicated on their embeddings. Returns an empty vector only when no
/// valid embedding exists inside the grid.
std::vector<DmeCandidate> buildCandidateTrees(const grid::ObstacleMap& obstacles,
                                              grid::NetId net,
                                              std::span<const Point> sinks,
                                              const CandidateOptions& options = {});

}  // namespace pacor::dme
