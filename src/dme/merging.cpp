#include "dme/merging.hpp"

#include <algorithm>
#include <cassert>

namespace pacor::dme {

std::int64_t MergePlan::maxSkewSlack(const Topology& topo) const {
  std::int64_t worst = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    (void)topo;
    worst = std::max(worst, nodes[i].skewSlack);
  }
  return worst;
}

MergePlan computeMergePlan(const Topology& topo, std::span<const Point> sinks) {
  MergePlan plan;
  plan.nodes.resize(topo.nodes.size());

  // Topology nodes are emitted children-first by the builder, so a single
  // forward pass is bottom-up; assert the invariant instead of sorting.
  for (std::size_t i = 0; i < topo.nodes.size(); ++i) {
    const TopologyNode& t = topo.nodes[i];
    MergeNode& m = plan.nodes[i];
    if (t.isLeaf()) {
      const Point doubled = sinks[static_cast<std::size_t>(t.sink)] * 2;
      m.region = geom::TiltedRect::fromXY(doubled);
      m.delay = 0;
      continue;
    }
    assert(t.left >= 0 && static_cast<std::size_t>(t.left) < i);
    assert(t.right >= 0 && static_cast<std::size_t>(t.right) < i);
    const MergeNode& l = plan.nodes[static_cast<std::size_t>(t.left)];
    const MergeNode& r = plan.nodes[static_cast<std::size_t>(t.right)];

    const std::int64_t d = geom::chebyshevGap(l.region, r.region);
    // Zero skew: delay(l) + el == delay(r) + er with el + er minimal
    // (= d when balanced; the clamped side detours otherwise).
    const std::int64_t num = d + r.delay - l.delay;
    std::int64_t el;
    std::int64_t er;
    std::int64_t slack = 0;  // integer flooring remainder (doubled units)
    if (num <= 0) {
      el = 0;
      er = l.delay - r.delay;  // >= d, detour wire on the right side
    } else if (num >= 2 * d) {
      er = 0;
      el = r.delay - l.delay;
    } else {
      el = num / 2;
      er = d - el;
      slack = num - 2 * el;  // 0 or 1: the odd-parity half unit of Lemma 1
    }
    m.edgeLeft = el;
    m.edgeRight = er;
    m.region = l.region.inflated(el).intersectWith(r.region.inflated(er));
    assert(!m.region.empty());
    m.delay = std::max(l.delay + el, r.delay + er);
    m.skewSlack = std::max(l.skewSlack, r.skewSlack) + slack;
    plan.totalTargetWire += el + er;
  }
  return plan;
}

}  // namespace pacor::dme
