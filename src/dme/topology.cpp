#include "dme/topology.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace pacor::dme {

std::size_t Topology::leafCount() const noexcept {
  std::size_t n = 0;
  for (const TopologyNode& node : nodes)
    if (node.isLeaf()) ++n;
  return n;
}

bool Topology::coversAllSinks(std::size_t sinkCount) const {
  std::vector<int> seen(sinkCount, 0);
  std::vector<int> stack;
  if (root < 0) return sinkCount == 0;
  stack.push_back(root);
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    if (v < 0 || static_cast<std::size_t>(v) >= nodes.size()) return false;
    const TopologyNode& node = nodes[static_cast<std::size_t>(v)];
    if (node.isLeaf()) {
      if (static_cast<std::size_t>(node.sink) >= sinkCount) return false;
      ++seen[static_cast<std::size_t>(node.sink)];
    } else {
      if (node.left < 0 || node.right < 0) return false;
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  return std::all_of(seen.begin(), seen.end(), [](int c) { return c == 1; });
}

std::int64_t manhattanDiameter(std::span<const Point> points) {
  std::int64_t best = 0;
  for (std::size_t i = 0; i < points.size(); ++i)
    for (std::size_t j = i + 1; j < points.size(); ++j)
      best = std::max(best, geom::manhattan(points[i], points[j]));
  return best;
}

namespace {

/// Exhaustive-search cutoff: C(11, 5) masks at n = 12 are still trivial.
constexpr std::size_t kExactCutoff = 12;

struct Builder {
  std::span<const Point> sinks;
  Topology topo;

  int build(std::vector<std::size_t> idx) {
    if (idx.size() == 1) {
      topo.nodes.push_back({-1, -1, static_cast<int>(idx.front())});
      return static_cast<int>(topo.nodes.size()) - 1;
    }
    auto [a, b] = bipartition(idx);
    const int left = build(std::move(a));
    const int right = build(std::move(b));
    topo.nodes.push_back({left, right, -1});
    return static_cast<int>(topo.nodes.size()) - 1;
  }

  std::pair<std::vector<std::size_t>, std::vector<std::size_t>> bipartition(
      const std::vector<std::size_t>& idx) const {
    const std::size_t n = idx.size();
    const std::size_t half = (n + 1) / 2;
    if (n <= kExactCutoff) return exactBipartition(idx, half);
    return medianBipartition(idx, half);
  }

  /// Minimum sum-of-diameters over all balanced splits; side A is pinned
  /// to contain idx[0] to kill the mirror symmetry.
  std::pair<std::vector<std::size_t>, std::vector<std::size_t>> exactBipartition(
      const std::vector<std::size_t>& idx, std::size_t half) const {
    const std::size_t n = idx.size();
    std::int64_t bestScore = std::numeric_limits<std::int64_t>::max();
    std::uint32_t bestMask = 0;
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
      if (!(mask & 1u)) continue;
      const auto cnt = static_cast<std::size_t>(__builtin_popcount(mask));
      if (cnt != half) continue;
      std::vector<Point> a, b;
      for (std::size_t i = 0; i < n; ++i)
        ((mask >> i) & 1u ? a : b).push_back(sinks[idx[i]]);
      const std::int64_t score = manhattanDiameter(a) + manhattanDiameter(b);
      if (score < bestScore) {
        bestScore = score;
        bestMask = mask;
      }
    }
    std::vector<std::size_t> a, b;
    for (std::size_t i = 0; i < n; ++i)
      ((bestMask >> i) & 1u ? a : b).push_back(idx[i]);
    return {std::move(a), std::move(b)};
  }

  /// Large sets: split at the median of the longer bounding-box axis,
  /// evaluated on both axes, keeping the smaller diameter sum.
  std::pair<std::vector<std::size_t>, std::vector<std::size_t>> medianBipartition(
      const std::vector<std::size_t>& idx, std::size_t half) const {
    auto splitBy = [&](bool byX) {
      std::vector<std::size_t> sorted = idx;
      std::stable_sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
        return byX ? sinks[a].x < sinks[b].x : sinks[a].y < sinks[b].y;
      });
      std::vector<std::size_t> a(sorted.begin(),
                                 sorted.begin() + static_cast<std::ptrdiff_t>(half));
      std::vector<std::size_t> b(sorted.begin() + static_cast<std::ptrdiff_t>(half),
                                 sorted.end());
      return std::make_pair(std::move(a), std::move(b));
    };
    auto score = [&](const auto& pair) {
      std::vector<Point> a, b;
      for (const std::size_t i : pair.first) a.push_back(sinks[i]);
      for (const std::size_t i : pair.second) b.push_back(sinks[i]);
      return manhattanDiameter(a) + manhattanDiameter(b);
    };
    auto sx = splitBy(true);
    auto sy = splitBy(false);
    return score(sx) <= score(sy) ? std::move(sx) : std::move(sy);
  }
};

}  // namespace

Topology balancedBipartition(std::span<const Point> sinks) {
  Topology topo;
  if (sinks.empty()) return topo;
  Builder builder{sinks, {}};
  std::vector<std::size_t> all(sinks.size());
  std::iota(all.begin(), all.end(), 0);
  builder.topo.nodes.reserve(2 * sinks.size());
  const int root = builder.build(std::move(all));
  topo = std::move(builder.topo);
  topo.root = root;
  return topo;
}

}  // namespace pacor::dme
