#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dme/topology.hpp"
#include "geom/tilted.hpp"

namespace pacor::dme {

/// Bottom-up DME state for one topology node, in *doubled* tilted space:
/// sink coordinates are multiplied by 2 before the tilted transform so the
/// half-unit merging segments of odd-distance merges (paper Lemma 1) stay
/// exactly representable as integers.
struct MergeNode {
  geom::TiltedRect region;        ///< merging region (doubled tilted coords)
  std::int64_t delay = 0;         ///< target region->sink distance (doubled)
  std::int64_t edgeLeft = 0;      ///< target wire to left child (doubled)
  std::int64_t edgeRight = 0;     ///< target wire to right child (doubled)
  std::int64_t skewSlack = 0;     ///< accumulated integer-floor skew (doubled)
};

/// Result of the bottom-up merging phase over a topology.
struct MergePlan {
  std::vector<MergeNode> nodes;   ///< aligned with Topology::nodes
  std::int64_t totalTargetWire = 0;  ///< sum of edge targets (doubled)

  /// Worst-case accumulated skew from integer flooring, over all sinks
  /// (doubled units); 0 whenever all merges were parity-exact.
  std::int64_t maxSkewSlack(const Topology& topo) const;
};

/// Bottom-up merging-segment computation (paper Sec. 4.1). Zero-skew
/// balancing: at each internal node with child delays dl, dr and region
/// gap d, the wire split is el = (d + dr - dl) / 2 clamped to [0, inf)
/// (the clamped side detours, el + er >= d), and the merging region is
/// inflate(left, el) n inflate(right, er). Exact in doubled tilted space
/// up to integer flooring, which is tracked per node in skewSlack.
MergePlan computeMergePlan(const Topology& topo, std::span<const Point> sinks);

}  // namespace pacor::dme
