#include "geom/tilted.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace pacor::geom {

TiltedRect TiltedRect::intersectWith(const TiltedRect& o) const noexcept {
  return {{std::max(lo.x, o.lo.x), std::max(lo.y, o.lo.y)},
          {std::min(hi.x, o.hi.x), std::min(hi.y, o.hi.y)}};
}

std::int64_t TiltedRect::chebyshevTo(Point t) const noexcept {
  return chebyshev(t, clampTilted(t));
}

std::int64_t chebyshevGap(const TiltedRect& a, const TiltedRect& b) noexcept {
  const auto axisGap = [](std::int32_t alo, std::int32_t ahi, std::int32_t blo,
                          std::int32_t bhi) -> std::int64_t {
    if (blo > ahi) return static_cast<std::int64_t>(blo) - ahi;
    if (alo > bhi) return static_cast<std::int64_t>(alo) - bhi;
    return 0;
  };
  return std::max(axisGap(a.lo.x, a.hi.x, b.lo.x, b.hi.x),
                  axisGap(a.lo.y, a.hi.y, b.lo.y, b.hi.y));
}

std::vector<Point> TiltedRect::latticePointsXY(std::size_t maxCount) const {
  std::vector<Point> out;
  if (empty() || maxCount == 0) return out;

  // Count lattice points per u column: v in [lo.y, hi.y] with v == u (mod 2).
  const auto columnCount = [&](std::int32_t u) -> std::int64_t {
    std::int32_t vfirst = lo.y;
    if (((vfirst - u) % 2 + 2) % 2 != 0) ++vfirst;
    if (vfirst > hi.y) return 0;
    return (static_cast<std::int64_t>(hi.y) - vfirst) / 2 + 1;
  };

  std::int64_t total = 0;
  for (std::int32_t u = lo.x; u <= hi.x; ++u) total += columnCount(u);
  if (total == 0) return out;

  // Even-stride subsample across the linearized index space.
  const std::int64_t want = std::min<std::int64_t>(total, static_cast<std::int64_t>(maxCount));
  std::int64_t nextIdx = 0;
  std::int64_t taken = 0;
  std::int64_t seen = 0;
  for (std::int32_t u = lo.x; u <= hi.x && taken < want; ++u) {
    std::int32_t vfirst = lo.y;
    if (((vfirst - u) % 2 + 2) % 2 != 0) ++vfirst;
    for (std::int32_t v = vfirst; v <= hi.y && taken < want; v += 2, ++seen) {
      if (seen < nextIdx) continue;
      out.push_back(fromTilted({u, v}));
      ++taken;
      nextIdx = taken * (total - 1) / std::max<std::int64_t>(1, want - 1);
      if (want == 1) nextIdx = total;  // single sample: take the first
    }
  }
  return out;
}

Point TiltedRect::snapLatticeXY(Point t) const {
  Point c = clampTilted(t);
  if (!tiltedOnLattice(c)) {
    // Shift one unit along the axis with slack; otherwise step outside by
    // one (the caller absorbs the half-unit rounding per Lemma 1).
    if (c.x < hi.x)
      ++c.x;
    else if (c.x > lo.x)
      --c.x;
    else if (c.y < hi.y)
      ++c.y;
    else
      --c.y;
  }
  return fromTilted(c);
}

std::ostream& operator<<(std::ostream& os, const TiltedRect& r) {
  return os << "T[" << r.lo << ".." << r.hi << ']';
}

}  // namespace pacor::geom
