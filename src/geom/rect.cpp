#include "geom/rect.hpp"

#include <ostream>

namespace pacor::geom {

Rect Rect::unionWith(const Rect& r) const noexcept {
  if (empty()) return r;
  if (r.empty()) return *this;
  return {{std::min(lo.x, r.lo.x), std::min(lo.y, r.lo.y)},
          {std::max(hi.x, r.hi.x), std::max(hi.y, r.hi.y)}};
}

Rect Rect::intersectWith(const Rect& r) const noexcept {
  return {{std::max(lo.x, r.lo.x), std::max(lo.y, r.lo.y)},
          {std::min(hi.x, r.hi.x), std::min(hi.y, r.hi.y)}};
}

std::int64_t Rect::manhattanTo(Point p) const noexcept {
  return manhattan(p, clamp(p));
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.lo << ".." << r.hi << ']';
}

}  // namespace pacor::geom
