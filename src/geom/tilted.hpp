#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace pacor::geom {

/// Tilted-space transform used by the DME engine.
///
/// Under u = x + y, v = y - x the Manhattan metric becomes the Chebyshev
/// metric, Manhattan balls become axis-aligned squares, and DME merging
/// segments (Manhattan arcs, slope +-1) become axis-aligned segments.
/// A lattice (x, y) maps to a tilted lattice point with u == v (mod 2);
/// the inverse transform is only integral for such points.
constexpr Point toTilted(Point p) noexcept { return {p.x + p.y, p.y - p.x}; }

/// Inverse of toTilted. Precondition: (t.x + t.y) is even, i.e. the tilted
/// point is the image of a lattice point.
constexpr Point fromTilted(Point t) noexcept {
  return {(t.x - t.y) / 2, (t.x + t.y) / 2};
}

/// True when a tilted point is the image of an integer (x, y) point.
constexpr bool tiltedOnLattice(Point t) noexcept {
  return ((t.x + t.y) % 2 + 2) % 2 == 0;
}

/// Closed axis-aligned rectangle in tilted space. Under Chebyshev metric
/// these are closed under Minkowski inflation and intersection, which is
/// exactly what bottom-up DME merging needs: the merging region of two
/// regions A, B with edge lengths ea, eb is inflate(A, ea) n inflate(B, eb).
struct TiltedRect {
  Point lo;  ///< (u_min, v_min)
  Point hi;  ///< (u_max, v_max)

  static constexpr TiltedRect fromXY(Point p) noexcept {
    const Point t = toTilted(p);
    return {t, t};
  }
  static constexpr TiltedRect fromTiltedCorners(Point a, Point b) noexcept {
    return {{std::min(a.x, b.x), std::min(a.y, b.y)},
            {std::max(a.x, b.x), std::max(a.y, b.y)}};
  }

  friend constexpr bool operator==(const TiltedRect&, const TiltedRect&) noexcept = default;

  constexpr bool empty() const noexcept { return lo.x > hi.x || lo.y > hi.y; }
  constexpr bool degenerate() const noexcept {
    return !empty() && (lo.x == hi.x || lo.y == hi.y);
  }
  constexpr bool isPoint() const noexcept { return lo == hi; }

  constexpr TiltedRect inflated(std::int64_t r) const noexcept {
    const auto ri = static_cast<std::int32_t>(r);
    return {{lo.x - ri, lo.y - ri}, {hi.x + ri, hi.y + ri}};
  }

  TiltedRect intersectWith(const TiltedRect& o) const noexcept;

  constexpr bool containsTilted(Point t) const noexcept {
    return t.x >= lo.x && t.x <= hi.x && t.y >= lo.y && t.y <= hi.y;
  }
  bool containsXY(Point p) const noexcept { return containsTilted(toTilted(p)); }

  /// Chebyshev distance from a tilted point to this rect (0 inside).
  std::int64_t chebyshevTo(Point t) const noexcept;

  /// Manhattan (original-space) distance from XY point p to the region.
  std::int64_t manhattanToXY(Point p) const noexcept { return chebyshevTo(toTilted(p)); }

  /// Closest tilted point of the rect to tilted point t.
  constexpr Point clampTilted(Point t) const noexcept {
    return {std::clamp(t.x, lo.x, hi.x), std::clamp(t.y, lo.y, hi.y)};
  }

  /// All lattice XY points covered by the region (u == v mod 2 filter),
  /// capped at `maxCount` points sampled with an even stride so the result
  /// spans the whole region. Used to enumerate candidate merging nodes.
  std::vector<Point> latticePointsXY(std::size_t maxCount) const;

  /// A lattice XY point of the region closest (Chebyshev in tilted space)
  /// to tilted point t; by convention returns the clamped point adjusted
  /// for parity. Precondition: region covers at least one lattice point or
  /// is non-empty (a parity-adjusted neighbour just outside may be returned
  /// for zero-thickness off-lattice arcs — callers absorb the 1-unit snap).
  Point snapLatticeXY(Point t) const;
};

/// Chebyshev gap between two tilted rects: the minimum merging cost
/// (Manhattan distance in original space) between the two regions.
std::int64_t chebyshevGap(const TiltedRect& a, const TiltedRect& b) noexcept;

std::ostream& operator<<(std::ostream& os, const TiltedRect& r);

}  // namespace pacor::geom
