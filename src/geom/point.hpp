#pragma once

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iosfwd>
#include <string>

namespace pacor::geom {

/// Integer lattice point on the routing grid (or, in DME, on the doubled
/// half-unit grid). All routing geometry in PACOR is Manhattan.
struct Point {
  std::int32_t x = 0;
  std::int32_t y = 0;

  friend constexpr bool operator==(Point a, Point b) noexcept = default;
  /// Lexicographic (y-major) order so sorted point sets scan row by row.
  friend constexpr bool operator<(Point a, Point b) noexcept {
    return a.y != b.y ? a.y < b.y : a.x < b.x;
  }

  constexpr Point operator+(Point o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Point operator-(Point o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Point operator*(std::int32_t k) const noexcept { return {x * k, y * k}; }

  std::string str() const;
};

/// Manhattan (L1) distance — the channel-length metric on the routing grid.
constexpr std::int64_t manhattan(Point a, Point b) noexcept {
  return static_cast<std::int64_t>(std::abs(a.x - b.x)) + std::abs(a.y - b.y);
}

/// Chebyshev (L-inf) distance; equals Manhattan distance of the preimage
/// under the tilted-space transform (see tilted.hpp).
constexpr std::int64_t chebyshev(Point a, Point b) noexcept {
  const std::int64_t dx = std::abs(a.x - b.x);
  const std::int64_t dy = std::abs(a.y - b.y);
  return dx > dy ? dx : dy;
}

/// Parity of a point: (x + y) mod 2. Any grid path between two points has
/// length congruent to the parity difference mod 2 — the invariant that
/// makes delta-length detouring with even increments well-defined.
constexpr int parity(Point p) noexcept {
  return static_cast<int>(((p.x + p.y) % 2 + 2) % 2);
}

std::ostream& operator<<(std::ostream& os, Point p);

}  // namespace pacor::geom

template <>
struct std::hash<pacor::geom::Point> {
  std::size_t operator()(pacor::geom::Point p) const noexcept {
    // 2D -> 1D mix; grids are far below 2^32 per axis.
    const std::uint64_t ux = static_cast<std::uint32_t>(p.x);
    const std::uint64_t uy = static_cast<std::uint32_t>(p.y);
    std::uint64_t v = (ux << 32) | uy;
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdULL;
    v ^= v >> 33;
    return static_cast<std::size_t>(v);
  }
};
