#pragma once

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <optional>

#include "geom/point.hpp"

namespace pacor::geom {

/// Closed axis-aligned integer rectangle [lo.x, hi.x] x [lo.y, hi.y].
/// A degenerate rect (point or segment) is valid; an empty rect is
/// represented by lo > hi on some axis and reports empty().
struct Rect {
  Point lo;
  Point hi;

  static constexpr Rect fromPoint(Point p) noexcept { return {p, p}; }
  static constexpr Rect fromCorners(Point a, Point b) noexcept {
    return {{std::min(a.x, b.x), std::min(a.y, b.y)},
            {std::max(a.x, b.x), std::max(a.y, b.y)}};
  }

  friend constexpr bool operator==(const Rect&, const Rect&) noexcept = default;

  constexpr bool empty() const noexcept { return lo.x > hi.x || lo.y > hi.y; }
  constexpr std::int64_t width() const noexcept {
    return empty() ? 0 : static_cast<std::int64_t>(hi.x) - lo.x + 1;
  }
  constexpr std::int64_t height() const noexcept {
    return empty() ? 0 : static_cast<std::int64_t>(hi.y) - lo.y + 1;
  }
  /// Number of lattice points covered (inclusive-area semantics used by
  /// the Steiner-tree overlap cost, Eq. 4 of the paper).
  constexpr std::int64_t area() const noexcept { return width() * height(); }

  constexpr bool contains(Point p) const noexcept {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  constexpr bool containsRect(const Rect& r) const noexcept {
    return r.empty() || (contains(r.lo) && contains(r.hi));
  }

  /// Minkowski grow by r on every side (r >= 0).
  constexpr Rect inflated(std::int32_t r) const noexcept {
    return {{lo.x - r, lo.y - r}, {hi.x + r, hi.y + r}};
  }

  /// Smallest rect covering both (treats empty operands as identity).
  Rect unionWith(const Rect& r) const noexcept;

  /// Intersection; empty rect when disjoint.
  Rect intersectWith(const Rect& r) const noexcept;

  /// Closest point inside the rect to p (p itself when contained).
  constexpr Point clamp(Point p) const noexcept {
    return {std::clamp(p.x, lo.x, hi.x), std::clamp(p.y, lo.y, hi.y)};
  }

  /// Manhattan distance from p to the rect (0 when inside).
  std::int64_t manhattanTo(Point p) const noexcept;
};

/// Bounding box of a grid edge (two endpoints); used by the overlap cost.
constexpr Rect boundingBox(Point a, Point b) noexcept {
  return Rect::fromCorners(a, b);
}

std::ostream& operator<<(std::ostream& os, const Rect& r);

}  // namespace pacor::geom
