#include "geom/point.hpp"

#include <ostream>
#include <sstream>

namespace pacor::geom {

std::string Point::str() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, Point p) {
  return os << '(' << p.x << ',' << p.y << ')';
}

}  // namespace pacor::geom
