#include "route/negotiation.hpp"

#include <unordered_set>

#include "route/astar.hpp"

namespace pacor::route {
namespace {

/// Local net ids for the per-edge occupancy inside the negotiation map.
grid::NetId edgeNet(std::size_t edgeIndex) {
  return static_cast<grid::NetId>(edgeIndex) + 1'000'000;
}

}  // namespace

NegotiationResult negotiatedRoute(const grid::ObstacleMap& obstacles,
                                  std::span<const NegotiationEdge> edges,
                                  const NegotiationConfig& config) {
  NegotiationResult result;
  result.paths.assign(edges.size(), {});
  result.routed.assign(edges.size(), false);
  if (edges.empty()) {
    result.success = true;
    return result;
  }

  const grid::Grid& g = obstacles.grid();
  std::vector<double> history(static_cast<std::size_t>(g.cellCount()), 0.0);

  // Terminal cells per edge (merging nodes may be shared within a group).
  std::vector<std::unordered_set<Point>> terminals(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    terminals[i].insert(edges[i].a.begin(), edges[i].a.end());
    terminals[i].insert(edges[i].b.begin(), edges[i].b.end());
  }

  for (int r = 0; r < config.maxIterations; ++r) {
    result.iterations = r + 1;
    grid::ObstacleMap local = obstacles;  // fresh occupancy every iteration
    // Terminal cells may arrive owned by the caller (e.g. valve cells
    // pre-claimed by their cluster's net); they belong to the edges being
    // routed here, so open them up inside the local map.
    for (const auto& terms : terminals)
      for (const Point t : terms) {
        const grid::NetId owner = local.owner(t);
        if (owner >= 0 && owner < edgeNet(0))
          local.releasePath(std::span<const Point>(&t, 1), owner);
      }
    bool done = true;

    for (std::size_t i = 0; i < edges.size(); ++i) {
      result.routed[i] = false;
      result.paths[i].clear();

      // Terminal cells occupied by sibling edges of the same group are
      // legal connection points: temporarily release them for this search.
      std::vector<std::pair<Point, grid::NetId>> restored;
      for (const Point t : terminals[i]) {
        const grid::NetId owner = local.owner(t);
        if (owner >= edgeNet(0)) {
          const auto ownerIdx = static_cast<std::size_t>(owner - edgeNet(0));
          if (ownerIdx < edges.size() && edges[ownerIdx].group == edges[i].group) {
            restored.emplace_back(t, owner);
            local.releasePath(std::span<const Point>(&t, 1), owner);
          }
        }
      }

      AStarRequest req;
      req.sources = edges[i].a;
      req.targets = edges[i].b;
      req.net = edgeNet(i);
      req.historyCost = &history;
      AStarResult found = aStarRoute(local, req);

      if (found.success) {
        // Released terminal cells that the path did not use go back to
        // their sibling owner; used ones transfer to this edge.
        const std::unordered_set<Point> onPath(found.path.begin(), found.path.end());
        for (const auto& [cell, owner] : restored)
          if (!onPath.count(cell)) local.occupy(std::span<const Point>(&cell, 1), owner);
        local.occupy(found.path, edgeNet(i));
        result.paths[i] = std::move(found.path);
        result.routed[i] = true;
      } else {
        // Failed edge: put the released terminals back and mark iteration.
        for (const auto& [cell, owner] : restored)
          local.occupy(std::span<const Point>(&cell, 1), owner);
        done = false;
      }
    }

    if (done) {
      result.success = true;
      return result;
    }

    // Eq. 5: bump history on every cell of every routed path, then rip all
    // paths up (the fresh `local` next iteration performs the rip).
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (!result.routed[i]) continue;
      for (const Point p : result.paths[i]) {
        double& h = history[static_cast<std::size_t>(g.index(p))];
        h = config.baseHistoryCost + config.alpha * h;
      }
    }
  }

  result.success = false;
  return result;
}

}  // namespace pacor::route
