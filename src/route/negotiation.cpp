#include "route/negotiation.hpp"

#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "route/astar.hpp"
#include "route/workspace.hpp"
#include "trace/trace.hpp"
#include "util/thread_pool.hpp"

namespace pacor::route {
namespace {

/// Local net ids for the per-edge occupancy inside the negotiation map.
grid::NetId edgeNet(std::size_t edgeIndex) {
  return static_cast<grid::NetId>(edgeIndex) + 1'000'000;
}

/// A speculative routing attempt made against the iteration-start map
/// state, before any edge of the iteration committed. `touched` is every
/// cell the search labeled; the commit phase accepts the attempt only if
/// none of those cells (nor the edge's terminals) were changed by an
/// earlier commit, which makes the accepted path bit-identical to what a
/// serial search at that point would have produced.
struct SpeculativeEdge {
  AStarResult found;
  std::vector<std::int32_t> touched;
};

AStarRequest requestFor(const NegotiationEdge& edge, std::size_t edgeIndex,
                        const std::vector<double>& history,
                        const std::unordered_set<Point>* forbidden) {
  AStarRequest req;
  req.sources = edge.a;
  req.targets = edge.b;
  req.net = edgeNet(edgeIndex);
  req.historyCost = &history;
  req.forbidden = forbidden;
  return req;
}

}  // namespace

NegotiationResult negotiatedRoute(const grid::ObstacleMap& obstacles,
                                  std::span<const NegotiationEdge> edges,
                                  const NegotiationConfig& config,
                                  util::ThreadPool* pool) {
  NegotiationResult result;
  result.paths.assign(edges.size(), {});
  result.routed.assign(edges.size(), false);
  if (edges.empty()) {
    result.success = true;
    return result;
  }

  const grid::Grid& g = obstacles.grid();
  std::vector<double> history(static_cast<std::size_t>(g.cellCount()), 0.0);

  // Terminal cells per edge (merging nodes may be shared within a group).
  std::vector<std::unordered_set<Point>> terminals(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    terminals[i].insert(edges[i].a.begin(), edges[i].a.end());
    terminals[i].insert(edges[i].b.begin(), edges[i].b.end());
  }

  // One private copy for the whole negotiation. Terminal cells may arrive
  // owned by the caller (e.g. valve cells pre-claimed by their cluster's
  // net); they belong to the edges being routed here, so open them up
  // once. Per-iteration rip-up is an undo-log rollback, not a fresh copy.
  grid::ObstacleMap local = obstacles;
  for (const auto& terms : terminals)
    for (const Point t : terms) {
      const grid::NetId owner = local.owner(t);
      if (owner >= 0 && owner < edgeNet(0))
        local.releasePath(std::span<const Point>(&t, 1), owner);
    }

  // Releasing a terminal must only open it to its OWN group: without a
  // fence, an unrelated edge could route straight through another
  // cluster's valve or merging node (free here, but owned in the caller's
  // map — committing such a path silently corrupts cross-cluster
  // ownership). Per group, forbid every terminal of every other group.
  std::unordered_set<Point> allTerminals;
  for (const auto& terms : terminals) allTerminals.insert(terms.begin(), terms.end());
  std::unordered_map<int, std::unordered_set<Point>> forbiddenOf;
  for (std::size_t i = 0; i < edges.size(); ++i) forbiddenOf.try_emplace(edges[i].group);
  for (auto& [group, fence] : forbiddenOf) {
    fence = allTerminals;
    for (std::size_t i = 0; i < edges.size(); ++i)
      if (edges[i].group == group)
        for (const Point t : terminals[i]) fence.erase(t);
  }
  const auto fenceFor = [&](std::size_t edgeIndex) {
    return &forbiddenOf.at(edges[edgeIndex].group);
  };

  // Cells changed by commits of the current iteration; marked with the
  // iteration number so the array never needs clearing.
  std::vector<std::uint32_t> changedStamp(static_cast<std::size_t>(g.cellCount()), 0);

  const bool speculate = pool != nullptr && pool->threadCount() > 1 && edges.size() > 1;
  std::vector<SpeculativeEdge> spec;

  for (int r = 0; r < config.maxIterations; ++r) {
    trace::Span iterSpan("negotiation.iteration", "route", trace::Level::kCluster);
    iterSpan.arg("iteration", r);
    result.iterations = r + 1;
    const auto marker = static_cast<std::uint32_t>(r) + 1;
    grid::ObstacleMapTransaction txn(local);

    // Speculation phase: route every edge against the iteration-start map
    // (read-only here, so workers share it without copies); each worker
    // uses its own thread-local workspace.
    if (speculate) {
      spec.resize(edges.size());
      SharedTally* const tally = activeTally();
      pool->parallelFor(edges.size(), [&, tally](std::size_t i, unsigned) {
        // Credit worker-thread searches to the requesting thread's sink.
        TallyScope tallyScope(tally);
        RouterWorkspace& ws = localWorkspace();
        spec[i].found =
            aStarRoute(local, requestFor(edges[i], i, history, fenceFor(i)), &ws);
        spec[i].touched = ws.touched;
      });
    }

    bool done = true;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      result.routed[i] = false;
      result.paths[i].clear();

      // A speculative result is the serial result iff the serial search
      // would have seen the same owner on every cell it examined: no
      // labeled cell changed (commits only turn free cells into occupied
      // ones, so a blocked probe stays blocked) and no terminal of this
      // edge changed (so the sibling-release step below is still a no-op,
      // as it was at iteration start when every terminal was free).
      bool useSpeculative = speculate;
      if (useSpeculative)
        for (const std::int32_t c : spec[i].touched)
          if (changedStamp[static_cast<std::size_t>(c)] == marker) {
            useSpeculative = false;
            break;
          }
      if (useSpeculative)
        for (const Point t : terminals[i])
          if (changedStamp[static_cast<std::size_t>(g.index(t))] == marker) {
            useSpeculative = false;
            break;
          }

      const std::size_t logStart = txn.log().size();
      AStarResult found;
      if (useSpeculative) {
        found = std::move(spec[i].found);
        if (found.success) txn.occupy(found.path, edgeNet(i));
      } else {
        // Serial (re-)route on the live map. Terminal cells occupied by
        // sibling edges of the same group are legal connection points:
        // temporarily release them for this search.
        std::vector<std::pair<Point, grid::NetId>> restored;
        for (const Point t : terminals[i]) {
          const grid::NetId owner = local.owner(t);
          if (owner >= edgeNet(0)) {
            const auto ownerIdx = static_cast<std::size_t>(owner - edgeNet(0));
            if (ownerIdx < edges.size() && edges[ownerIdx].group == edges[i].group) {
              restored.emplace_back(t, owner);
              txn.releasePath(std::span<const Point>(&t, 1), owner);
            }
          }
        }

        found = aStarRoute(local, requestFor(edges[i], i, history, fenceFor(i)));

        if (found.success) {
          // Released terminal cells that the path did not use go back to
          // their sibling owner; used ones transfer to this edge.
          const std::unordered_set<Point> onPath(found.path.begin(), found.path.end());
          for (const auto& [cell, owner] : restored)
            if (!onPath.count(cell)) txn.occupy(std::span<const Point>(&cell, 1), owner);
          txn.occupy(found.path, edgeNet(i));
        } else {
          for (const auto& [cell, owner] : restored)
            txn.occupy(std::span<const Point>(&cell, 1), owner);
        }
      }

      if (found.success) {
        result.paths[i] = std::move(found.path);
        result.routed[i] = true;
      } else {
        done = false;
      }

      const auto log = txn.log();
      for (std::size_t k = logStart; k < log.size(); ++k)
        changedStamp[static_cast<std::size_t>(log[k].cell)] = marker;
    }

    if (done) {
      result.success = true;
      return result;
    }

    // Eq. 5: bump history on every cell of every routed path, then rip all
    // paths up (O(path cells) rollback instead of a fresh map copy).
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (!result.routed[i]) continue;
      for (const Point p : result.paths[i]) {
        double& h = history[static_cast<std::size_t>(g.index(p))];
        h = config.baseHistoryCost + config.alpha * h;
      }
    }
    txn.rollback();
  }

  result.success = false;
  return result;
}

}  // namespace pacor::route
