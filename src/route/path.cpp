#include "route/path.hpp"

#include <algorithm>
#include <unordered_set>

namespace pacor::route {

bool isConnected(std::span<const Point> path) {
  for (std::size_t i = 1; i < path.size(); ++i)
    if (geom::manhattan(path[i - 1], path[i]) != 1) return false;
  return true;
}

bool isSimple(std::span<const Point> path) {
  std::unordered_set<Point> seen;
  seen.reserve(path.size());
  for (const Point p : path)
    if (!seen.insert(p).second) return false;
  return true;
}

Path reversed(Path p) {
  std::reverse(p.begin(), p.end());
  return p;
}

}  // namespace pacor::route
