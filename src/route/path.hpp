#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.hpp"

namespace pacor::route {

using geom::Point;

/// A routed control channel segment: a sequence of 4-adjacent grid cells.
/// Channel *length* is the edge count (grid units), matching the paper's
/// l(p) used in the length-matching constraint.
using Path = std::vector<Point>;

/// Edge count of the path (0 for empty or single-cell paths).
inline std::int64_t pathLength(std::span<const Point> path) {
  return path.empty() ? 0 : static_cast<std::int64_t>(path.size()) - 1;
}

/// True when consecutive cells are 4-adjacent.
bool isConnected(std::span<const Point> path);

/// True when no cell repeats (a physical channel cannot self-intersect).
bool isSimple(std::span<const Point> path);

/// True when connected and simple.
inline bool isValidChannel(std::span<const Point> path) {
  return isConnected(path) && isSimple(path);
}

/// Reverses p in place and returns it (for stitching search results).
Path reversed(Path p);

}  // namespace pacor::route
