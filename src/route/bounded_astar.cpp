#include "route/bounded_astar.hpp"

#include <algorithm>
#include <array>

#include "route/workspace.hpp"
#include "trace/trace.hpp"

namespace pacor::route {
namespace {

/// Visit budget: beyond this the geometry is too constrained for the
/// search and the caller should fall back to bump insertion.
constexpr std::size_t kMaxVisits = 400'000;

/// Depth-first search over *simple* paths with window pruning. Simplicity
/// is guaranteed by construction (the current path doubles as the used-
/// cell set, tracked by workspace stamps: stamp == epoch marks a cell on
/// the path). The neighbor order implements the paper's modified-A*
/// intent: while the remaining straight-line completion would undershoot
/// the bound, wander away from the target (consume slack); once
/// g + H >= minLength, head straight home. The first accepted path
/// therefore lands near the window bottom.
struct Dfs {
  const grid::ObstacleMap& obstacles;
  const BoundedAStarRequest& req;
  RouterWorkspace& ws;
  Path path;
  std::size_t visits = 0;

  bool onPath(Point p) const {
    return ws.stamp[static_cast<std::size_t>(obstacles.grid().index(p))] == ws.epoch;
  }
  void mark(Point p) {
    ws.stamp[static_cast<std::size_t>(obstacles.grid().index(p))] = ws.epoch;
  }
  void unmark(Point p) {
    ws.stamp[static_cast<std::size_t>(obstacles.grid().index(p))] = 0;
  }

  bool run() {
    path.push_back(req.source);
    mark(req.source);
    const bool found = extend(req.source, 0);
    ws.boundedVisits += visits;
    return found;
  }

  bool extend(Point cell, std::int64_t g) {
    if (cell == req.target)
      return g >= req.minLength;  // g <= maxLength by pruning
    if (++visits > kMaxVisits) return false;

    std::array<Point, 4> order{};
    std::size_t n = 0;
    obstacles.grid().forNeighbors(cell, [&](Point q) { order[n++] = q; });
    // The paper's penalty priority: F = max(g + H, minLength). Under the
    // bound all F tie at minLength, so prefer the neighbor that consumes
    // the most slack (largest H); above it, smaller F = head straight home.
    const auto key = [&](Point q) {
      const std::int64_t h = geom::manhattan(q, req.target);
      const std::int64_t f = std::max(g + 1 + h, req.minLength);
      const std::int64_t tie = (g + 1 + h < req.minLength) ? -h : h;
      return std::pair(f, tie);
    };
    // Stable insertion sort of (at most) four entries: same order as the
    // library stable_sort without its temporary-buffer allocation.
    std::array<std::pair<std::int64_t, std::int64_t>, 4> keys{};
    for (std::size_t i = 0; i < n; ++i) keys[i] = key(order[i]);
    for (std::size_t i = 1; i < n; ++i)
      for (std::size_t j = i; j > 0 && keys[j] < keys[j - 1]; --j) {
        std::swap(order[j], order[j - 1]);
        std::swap(keys[j], keys[j - 1]);
      }

    for (std::size_t i = 0; i < n; ++i) {
      const Point q = order[i];
      if (!obstacles.isFreeFor(q, req.net) || onPath(q)) continue;
      const std::int64_t ng = g + 1;
      // Window pruning: even the straight completion must fit under the
      // cap. Parity makes minLength implicitly reachable whenever some
      // value of the path's parity class lies in the window.
      const std::int64_t straight = ng + geom::manhattan(q, req.target);
      if (straight > req.maxLength) continue;
      path.push_back(q);
      mark(q);
      if (extend(q, ng)) return true;
      path.pop_back();
      unmark(q);
      if (visits > kMaxVisits) return false;
    }
    return false;
  }
};

}  // namespace

BoundedAStarResult boundedLengthRoute(const grid::ObstacleMap& obstacles,
                                      const BoundedAStarRequest& request,
                                      RouterWorkspace* workspace) {
  BoundedAStarResult result;
  const grid::Grid& g = obstacles.grid();
  if (!g.inBounds(request.source) || !g.inBounds(request.target)) return result;
  if (!obstacles.isFreeFor(request.source, request.net) ||
      !obstacles.isFreeFor(request.target, request.net))
    return result;
  if (request.maxLength < request.minLength) return result;
  const std::int64_t straight = geom::manhattan(request.source, request.target);
  if (request.maxLength < straight) return result;
  // Parity feasibility: reachable lengths are straight + 2k.
  std::int64_t feasible = request.maxLength;
  if (((feasible - straight) & 1) != 0) --feasible;
  if (feasible < request.minLength) return result;
  if (request.source == request.target) {
    if (request.minLength > 0) return result;  // loops are not simple paths
    result.success = true;
    result.path = {request.source};
    return result;
  }

  trace::Span span("route.bounded_dfs", "search", trace::Level::kSearch);
  RouterWorkspace& ws = workspace != nullptr ? *workspace : localWorkspace();
  ws.bind(g);
  ws.beginSearch();
  Dfs dfs{obstacles, request, ws, {}, 0};
  const bool found = dfs.run();
  span.arg("visits", static_cast<std::int64_t>(ws.boundedVisits));
  span.arg("found", found ? 1 : 0);
  ws.flushCounters();
  if (!found) return result;
  result.success = true;
  result.path = std::move(dfs.path);
  result.length = pathLength(result.path);
  return result;
}

}  // namespace pacor::route
