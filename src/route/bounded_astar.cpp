#include "route/bounded_astar.hpp"

#include <algorithm>
#include <array>
#include <unordered_set>

namespace pacor::route {
namespace {

/// Visit budget: beyond this the geometry is too constrained for the
/// search and the caller should fall back to bump insertion.
constexpr std::size_t kMaxVisits = 400'000;

/// Depth-first search over *simple* paths with window pruning. Simplicity
/// is guaranteed by construction (the current path doubles as the used-
/// cell set). The neighbor order implements the paper's modified-A*
/// intent: while the remaining straight-line completion would undershoot
/// the bound, wander away from the target (consume slack); once
/// g + H >= minLength, head straight home. The first accepted path
/// therefore lands near the window bottom.
struct Dfs {
  const grid::ObstacleMap& obstacles;
  const BoundedAStarRequest& req;
  Path path;
  std::unordered_set<Point> used;
  std::size_t visits = 0;

  bool run() {
    path.push_back(req.source);
    used.insert(req.source);
    return extend(req.source, 0);
  }

  bool extend(Point cell, std::int64_t g) {
    if (cell == req.target)
      return g >= req.minLength;  // g <= maxLength by pruning
    if (++visits > kMaxVisits) return false;

    std::array<Point, 4> order{};
    std::size_t n = 0;
    obstacles.grid().forNeighbors(cell, [&](Point q) { order[n++] = q; });
    // The paper's penalty priority: F = max(g + H, minLength). Under the
    // bound all F tie at minLength, so prefer the neighbor that consumes
    // the most slack (largest H); above it, smaller F = head straight home.
    const auto key = [&](Point q) {
      const std::int64_t h = geom::manhattan(q, req.target);
      const std::int64_t f = std::max(g + 1 + h, req.minLength);
      const std::int64_t tie = (g + 1 + h < req.minLength) ? -h : h;
      return std::pair(f, tie);
    };
    std::stable_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(n),
                     [&](Point a, Point b) { return key(a) < key(b); });

    for (std::size_t i = 0; i < n; ++i) {
      const Point q = order[i];
      if (!obstacles.isFreeFor(q, req.net) || used.contains(q)) continue;
      const std::int64_t ng = g + 1;
      // Window pruning: even the straight completion must fit under the
      // cap. Parity makes minLength implicitly reachable whenever some
      // value of the path's parity class lies in the window.
      const std::int64_t straight = ng + geom::manhattan(q, req.target);
      if (straight > req.maxLength) continue;
      path.push_back(q);
      used.insert(q);
      if (extend(q, ng)) return true;
      path.pop_back();
      used.erase(q);
      if (visits > kMaxVisits) return false;
    }
    return false;
  }
};

}  // namespace

BoundedAStarResult boundedLengthRoute(const grid::ObstacleMap& obstacles,
                                      const BoundedAStarRequest& request) {
  BoundedAStarResult result;
  const grid::Grid& g = obstacles.grid();
  if (!g.inBounds(request.source) || !g.inBounds(request.target)) return result;
  if (!obstacles.isFreeFor(request.source, request.net) ||
      !obstacles.isFreeFor(request.target, request.net))
    return result;
  if (request.maxLength < request.minLength) return result;
  const std::int64_t straight = geom::manhattan(request.source, request.target);
  if (request.maxLength < straight) return result;
  // Parity feasibility: reachable lengths are straight + 2k.
  std::int64_t feasible = request.maxLength;
  if (((feasible - straight) & 1) != 0) --feasible;
  if (feasible < request.minLength) return result;
  if (request.source == request.target) {
    if (request.minLength > 0) return result;  // loops are not simple paths
    result.success = true;
    result.path = {request.source};
    return result;
  }

  Dfs dfs{obstacles, request, {}, {}, 0};
  if (!dfs.run()) return result;
  result.success = true;
  result.path = std::move(dfs.path);
  result.length = pathLength(result.path);
  return result;
}

}  // namespace pacor::route
