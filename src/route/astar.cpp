#include "route/astar.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "geom/rect.hpp"

namespace pacor::route {
namespace {

struct QItem {
  double f;
  double g;
  std::int32_t cell;

  bool operator>(const QItem& o) const noexcept { return f > o.f; }
};

}  // namespace

namespace {

/// Direction-aware variant: states are (cell, incoming direction), so a
/// turn can be charged request.bendPenalty. Used when bendPenalty > 0.
AStarResult aStarRouteWithBends(const grid::ObstacleMap& obstacles,
                                const AStarRequest& request) {
  AStarResult result;
  const grid::Grid& g = obstacles.grid();

  geom::Rect targetBox = geom::Rect::fromPoint(request.targets.front());
  for (const Point t : request.targets)
    targetBox = targetBox.unionWith(geom::Rect::fromPoint(t));
  const auto heuristic = [&](Point p) {
    return static_cast<double>(targetBox.manhattanTo(p));
  };
  const auto usable = [&](Point p) { return obstacles.isFreeFor(p, request.net); };

  const auto cellCount = static_cast<std::size_t>(g.cellCount());
  std::vector<char> isTarget(cellCount, 0);
  for (const Point t : request.targets)
    if (g.inBounds(t)) isTarget[static_cast<std::size_t>(g.index(t))] = 1;

  // State = cell * 5 + dir; dir 4 = "no direction yet" (source states).
  constexpr std::size_t kDirs = 5;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(cellCount * kDirs, kInf);
  std::vector<std::int64_t> parent(cellCount * kDirs, -1);

  struct Item {
    double f;
    double gCost;
    std::int64_t state;
    bool operator>(const Item& o) const noexcept { return f > o.f; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> open;

  const auto stepCost = [&](Point q) {
    double c = 1.0;
    if (request.historyCost != nullptr)
      c += (*request.historyCost)[static_cast<std::size_t>(g.index(q))];
    return c;
  };

  for (const Point s : request.sources) {
    if (!g.inBounds(s) || !usable(s)) continue;
    const auto state = static_cast<std::size_t>(g.index(s)) * kDirs + 4;
    if (dist[state] > 0.0) {
      dist[state] = 0.0;
      open.push({heuristic(s), 0.0, static_cast<std::int64_t>(state)});
    }
  }

  while (!open.empty()) {
    const Item top = open.top();
    open.pop();
    const auto state = static_cast<std::size_t>(top.state);
    if (top.gCost > dist[state]) continue;
    const auto cellIdx = static_cast<std::int32_t>(state / kDirs);
    const auto dir = state % kDirs;
    const Point p = g.point(cellIdx);
    if (isTarget[static_cast<std::size_t>(cellIdx)]) {
      result.success = true;
      result.cost = top.gCost;
      for (std::int64_t st = top.state; st != -1;
           st = parent[static_cast<std::size_t>(st)])
        result.path.push_back(g.point(static_cast<std::int32_t>(st / kDirs)));
      std::reverse(result.path.begin(), result.path.end());
      // A state chain may stay on one cell only at the source; dedupe.
      result.path.erase(std::unique(result.path.begin(), result.path.end(),
                                    [](Point a, Point b) { return a == b; }),
                        result.path.end());
      return result;
    }
    for (std::size_t d = 0; d < grid::Grid::kNeighborOffsets.size(); ++d) {
      const Point q = p + grid::Grid::kNeighborOffsets[d];
      if (!g.inBounds(q) || !usable(q)) continue;
      const double turn = (dir != 4 && dir != d) ? request.bendPenalty : 0.0;
      const double ng = top.gCost + stepCost(q) + turn;
      const auto nextState = static_cast<std::size_t>(g.index(q)) * kDirs + d;
      if (ng < dist[nextState]) {
        dist[nextState] = ng;
        parent[nextState] = top.state;
        open.push({ng + heuristic(q), ng, static_cast<std::int64_t>(nextState)});
      }
    }
  }
  return result;
}

}  // namespace

AStarResult aStarRoute(const grid::ObstacleMap& obstacles, const AStarRequest& request) {
  AStarResult result;
  if (request.sources.empty() || request.targets.empty()) return result;
  if (request.bendPenalty > 0.0) return aStarRouteWithBends(obstacles, request);
  const grid::Grid& g = obstacles.grid();

  geom::Rect targetBox = geom::Rect::fromPoint(request.targets.front());
  for (const Point t : request.targets) targetBox = targetBox.unionWith(geom::Rect::fromPoint(t));
  const auto heuristic = [&](Point p) {
    return static_cast<double>(targetBox.manhattanTo(p));
  };

  const auto usable = [&](Point p) { return obstacles.isFreeFor(p, request.net); };

  std::vector<char> isTarget(static_cast<std::size_t>(g.cellCount()), 0);
  for (const Point t : request.targets)
    if (g.inBounds(t)) isTarget[static_cast<std::size_t>(g.index(t))] = 1;

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<std::size_t>(g.cellCount()), kInf);
  std::vector<std::int32_t> parent(static_cast<std::size_t>(g.cellCount()), -1);
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> open;

  const auto stepCost = [&](Point q) {
    double c = 1.0;
    if (request.historyCost != nullptr)
      c += (*request.historyCost)[static_cast<std::size_t>(g.index(q))];
    return c;
  };

  for (const Point s : request.sources) {
    if (!g.inBounds(s) || !usable(s)) continue;
    const auto idx = static_cast<std::size_t>(g.index(s));
    if (dist[idx] > 0.0) {
      dist[idx] = 0.0;
      open.push({heuristic(s), 0.0, g.index(s)});
    }
  }

  while (!open.empty()) {
    const QItem top = open.top();
    open.pop();
    const auto cellIdx = static_cast<std::size_t>(top.cell);
    if (top.g > dist[cellIdx]) continue;  // stale entry
    const Point p = g.point(top.cell);
    if (isTarget[cellIdx]) {
      result.success = true;
      result.cost = top.g;
      for (std::int32_t c = top.cell; c != -1; c = parent[static_cast<std::size_t>(c)])
        result.path.push_back(g.point(c));
      std::reverse(result.path.begin(), result.path.end());
      return result;
    }
    g.forNeighbors(p, [&](Point q) {
      if (!usable(q)) return;
      const auto qIdx = static_cast<std::size_t>(g.index(q));
      const double ng = top.g + stepCost(q);
      if (ng < dist[qIdx]) {
        dist[qIdx] = ng;
        parent[qIdx] = top.cell;
        open.push({ng + heuristic(q), ng, g.index(q)});
      }
    });
  }
  return result;
}

AStarResult aStarPointToPoint(const grid::ObstacleMap& obstacles, Point source,
                              Point target, grid::NetId net,
                              const std::vector<double>* historyCost) {
  AStarRequest req;
  req.sources = {source};
  req.targets = {target};
  req.net = net;
  req.historyCost = historyCost;
  return aStarRoute(obstacles, req);
}

}  // namespace pacor::route
