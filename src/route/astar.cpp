#include "route/astar.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/rect.hpp"
#include "route/workspace.hpp"
#include "trace/trace.hpp"

namespace pacor::route {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Target-set goal shared by every search variant: the heuristic is the
/// Manhattan distance to the bounding box of the target set (admissible
/// and consistent; exact for a single target).
struct SearchGoal {
  geom::Rect box;

  static SearchGoal of(const std::vector<Point>& targets) {
    geom::Rect box = geom::Rect::fromPoint(targets.front());
    for (const Point t : targets) box = box.unionWith(geom::Rect::fromPoint(t));
    return {box};
  }

  std::int64_t h(Point p) const noexcept { return box.manhattanTo(p); }
};

/// Stamps the in-bounds target cells into the workspace's target array.
void stampTargets(RouterWorkspace& ws, const grid::Grid& g,
                  const std::vector<Point>& targets) {
  for (const Point t : targets)
    if (g.inBounds(t)) ws.targetStamp[static_cast<std::size_t>(g.index(t))] = ws.epoch;
}

/// Labels a cell: marks its dist/parent slots valid and records it in the
/// touched list (consumed by the speculative parallel commit).
inline void label(RouterWorkspace& ws, std::size_t idx, double g, std::int32_t par) {
  if (ws.stamp[idx] != ws.epoch) {
    ws.stamp[idx] = ws.epoch;
    ws.touched.push_back(static_cast<std::int32_t>(idx));
  }
  ws.dist[idx] = g;
  ws.parent[idx] = par;
}

AStarResult reconstruct(const grid::Grid& g, const RouterWorkspace& ws,
                        std::int32_t cell, double cost) {
  AStarResult result;
  result.success = true;
  result.cost = cost;
  for (std::int32_t c = cell; c != -1; c = ws.parent[static_cast<std::size_t>(c)])
    result.path.push_back(g.point(c));
  std::reverse(result.path.begin(), result.path.end());
  return result;
}

/// Integer-cost fast path (unit steps, no history): Dial's bucketed open
/// list instead of a binary heap. f = g + h never decreases under the
/// consistent Manhattan heuristic, so a forward cursor over the buckets
/// yields nodes in optimal order with O(1) push/pop.
AStarResult aStarRouteBuckets(const grid::ObstacleMap& obstacles,
                              const AStarRequest& request, RouterWorkspace& ws) {
  const grid::Grid& g = obstacles.grid();
  const SearchGoal goal = SearchGoal::of(request.targets);
  const auto usable = [&](Point p) {
    return obstacles.isFreeFor(p, request.net) &&
           (request.forbidden == nullptr || !request.forbidden->contains(p));
  };

  stampTargets(ws, g, request.targets);

  for (const Point s : request.sources) {
    if (!g.inBounds(s) || !usable(s)) continue;
    const auto idx = static_cast<std::size_t>(g.index(s));
    if (ws.stamp[idx] != ws.epoch || ws.dist[idx] > 0.0) {
      label(ws, idx, 0.0, -1);
      ws.bucketPush(goal.h(s), {g.index(s), 0});
    }
  }

  RouterWorkspace::BucketEntry top{};
  while (ws.bucketPop(top)) {
    const auto cellIdx = static_cast<std::size_t>(top.cell);
    if (static_cast<double>(top.g) > ws.dist[cellIdx]) continue;  // stale entry
    ++ws.expansions;
    if (ws.targetStamp[cellIdx] == ws.epoch)
      return reconstruct(g, ws, top.cell, static_cast<double>(top.g));
    const Point p = g.point(top.cell);
    const std::int32_t ng = top.g + 1;
    g.forNeighbors(p, [&](Point q) {
      if (!usable(q)) return;
      const auto qIdx = static_cast<std::size_t>(g.index(q));
      if (ws.stamp[qIdx] == ws.epoch && static_cast<double>(ng) >= ws.dist[qIdx]) return;
      label(ws, qIdx, static_cast<double>(ng), top.cell);
      ws.bucketPush(ng + goal.h(q), {g.index(q), ng});
    });
  }
  return {};
}

/// General path (per-cell history costs): binary min-heap over double f.
AStarResult aStarRouteHeap(const grid::ObstacleMap& obstacles,
                           const AStarRequest& request, RouterWorkspace& ws) {
  const grid::Grid& g = obstacles.grid();
  const SearchGoal goal = SearchGoal::of(request.targets);
  const auto usable = [&](Point p) {
    return obstacles.isFreeFor(p, request.net) &&
           (request.forbidden == nullptr || !request.forbidden->contains(p));
  };
  const auto stepCost = [&](Point q) {
    return 1.0 + (*request.historyCost)[static_cast<std::size_t>(g.index(q))];
  };

  stampTargets(ws, g, request.targets);
  auto& open = ws.heap;
  const auto push = [&](RouterWorkspace::HeapItem item) {
    open.push_back(item);
    std::push_heap(open.begin(), open.end(), std::greater<>{});
  };

  for (const Point s : request.sources) {
    if (!g.inBounds(s) || !usable(s)) continue;
    const auto idx = static_cast<std::size_t>(g.index(s));
    if (ws.stamp[idx] != ws.epoch || ws.dist[idx] > 0.0) {
      label(ws, idx, 0.0, -1);
      push({static_cast<double>(goal.h(s)), 0.0, g.index(s)});
    }
  }

  while (!open.empty()) {
    std::pop_heap(open.begin(), open.end(), std::greater<>{});
    const RouterWorkspace::HeapItem top = open.back();
    open.pop_back();
    const auto cellIdx = static_cast<std::size_t>(top.cell);
    if (top.g > ws.dist[cellIdx]) continue;  // stale entry
    ++ws.expansions;
    if (ws.targetStamp[cellIdx] == ws.epoch) return reconstruct(g, ws, top.cell, top.g);
    const Point p = g.point(top.cell);
    g.forNeighbors(p, [&](Point q) {
      if (!usable(q)) return;
      const auto qIdx = static_cast<std::size_t>(g.index(q));
      const double ng = top.g + stepCost(q);
      if (ws.stamp[qIdx] == ws.epoch && ng >= ws.dist[qIdx]) return;
      label(ws, qIdx, ng, top.cell);
      push({ng + static_cast<double>(goal.h(q)), ng, g.index(q)});
    });
  }
  return {};
}

/// Direction-aware variant: states are (cell, incoming direction), so a
/// turn can be charged request.bendPenalty. Used when bendPenalty > 0.
AStarResult aStarRouteWithBends(const grid::ObstacleMap& obstacles,
                                const AStarRequest& request, RouterWorkspace& ws) {
  const grid::Grid& g = obstacles.grid();
  const SearchGoal goal = SearchGoal::of(request.targets);
  const auto usable = [&](Point p) {
    return obstacles.isFreeFor(p, request.net) &&
           (request.forbidden == nullptr || !request.forbidden->contains(p));
  };
  const auto stepCost = [&](Point q) {
    double c = 1.0;
    if (request.historyCost != nullptr)
      c += (*request.historyCost)[static_cast<std::size_t>(g.index(q))];
    return c;
  };

  ws.bindDirectional();
  stampTargets(ws, g, request.targets);

  // State = cell * 5 + dir; dir 4 = "no direction yet" (source states).
  constexpr std::size_t kDirs = 5;
  const auto labelDir = [&](std::size_t state, double dv, std::int64_t par) {
    if (ws.stampDir[state] != ws.epoch) {
      ws.stampDir[state] = ws.epoch;
      ws.touched.push_back(static_cast<std::int32_t>(state / kDirs));
    }
    ws.distDir[state] = dv;
    ws.parentDir[state] = par;
  };
  auto& open = ws.dirHeap;
  const auto push = [&](RouterWorkspace::DirHeapItem item) {
    open.push_back(item);
    std::push_heap(open.begin(), open.end(), std::greater<>{});
  };

  for (const Point s : request.sources) {
    if (!g.inBounds(s) || !usable(s)) continue;
    const auto state = static_cast<std::size_t>(g.index(s)) * kDirs + 4;
    if (ws.stampDir[state] != ws.epoch || ws.distDir[state] > 0.0) {
      labelDir(state, 0.0, -1);
      push({static_cast<double>(goal.h(s)), 0.0, static_cast<std::int64_t>(state)});
    }
  }

  while (!open.empty()) {
    std::pop_heap(open.begin(), open.end(), std::greater<>{});
    const RouterWorkspace::DirHeapItem top = open.back();
    open.pop_back();
    const auto state = static_cast<std::size_t>(top.state);
    if (top.g > ws.distDir[state]) continue;
    ++ws.expansions;
    const auto cellIdx = static_cast<std::int32_t>(state / kDirs);
    const auto dir = state % kDirs;
    const Point p = g.point(cellIdx);
    if (ws.targetStamp[static_cast<std::size_t>(cellIdx)] == ws.epoch) {
      AStarResult result;
      result.success = true;
      result.cost = top.g;
      for (std::int64_t st = top.state; st != -1;
           st = ws.parentDir[static_cast<std::size_t>(st)])
        result.path.push_back(g.point(static_cast<std::int32_t>(st / kDirs)));
      std::reverse(result.path.begin(), result.path.end());
      // A state chain may stay on one cell only at the source; dedupe.
      result.path.erase(std::unique(result.path.begin(), result.path.end(),
                                    [](Point a, Point b) { return a == b; }),
                        result.path.end());
      return result;
    }
    for (std::size_t d = 0; d < grid::Grid::kNeighborOffsets.size(); ++d) {
      const Point q = p + grid::Grid::kNeighborOffsets[d];
      if (!g.inBounds(q) || !usable(q)) continue;
      const double turn = (dir != 4 && dir != d) ? request.bendPenalty : 0.0;
      const double ng = top.g + stepCost(q) + turn;
      const auto nextState = static_cast<std::size_t>(g.index(q)) * kDirs + d;
      if (ws.stampDir[nextState] == ws.epoch && ng >= ws.distDir[nextState]) continue;
      labelDir(nextState, ng, top.state);
      push({ng + static_cast<double>(goal.h(q)), ng, static_cast<std::int64_t>(nextState)});
    }
  }
  return {};
}

}  // namespace

AStarResult aStarRoute(const grid::ObstacleMap& obstacles, const AStarRequest& request,
                       RouterWorkspace* workspace) {
  if (request.sources.empty() || request.targets.empty()) return {};
  trace::Span span("route.astar", "search", trace::Level::kSearch);
  RouterWorkspace& ws = workspace != nullptr ? *workspace : localWorkspace();
  ws.bind(obstacles.grid());
  ws.beginSearch();
  AStarResult result;
  if (request.bendPenalty > 0.0)
    result = aStarRouteWithBends(obstacles, request, ws);
  else if (request.historyCost == nullptr)
    result = aStarRouteBuckets(obstacles, request, ws);
  else
    result = aStarRouteHeap(obstacles, request, ws);
  span.arg("expansions", static_cast<std::int64_t>(ws.expansions));
  span.arg("found", result.success ? 1 : 0);
  ws.flushCounters();
  return result;
}

AStarResult aStarPointToPoint(const grid::ObstacleMap& obstacles, Point source,
                              Point target, grid::NetId net,
                              const std::vector<double>* historyCost) {
  AStarRequest req;
  req.sources = {source};
  req.targets = {target};
  req.net = net;
  req.historyCost = historyCost;
  return aStarRoute(obstacles, req);
}

}  // namespace pacor::route
