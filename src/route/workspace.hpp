#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "grid/grid.hpp"

namespace pacor::route {

/// Aggregate search-effort counters, flushed from the workspaces into the
/// thread's active SharedTally (and the process-wide tally) so the
/// pipeline can report per-stage A* work in machine-readable form.
struct SearchCounters {
  std::uint64_t searches = 0;       ///< A* invocations (all variants)
  std::uint64_t expansions = 0;     ///< settled open-list pops
  std::uint64_t boundedVisits = 0;  ///< bounded-length DFS cell visits

  SearchCounters operator-(const SearchCounters& o) const noexcept {
    return {searches - o.searches, expansions - o.expansions,
            boundedVisits - o.boundedVisits};
  }
  SearchCounters& operator+=(const SearchCounters& o) noexcept {
    searches += o.searches;
    expansions += o.expansions;
    boundedVisits += o.boundedVisits;
    return *this;
  }
};

/// Reads the process-wide search tally (thread-safe). This aggregates
/// every search of the process lifetime across all concurrent callers;
/// per-request accounting must use a SharedTally scope instead --
/// differencing the process tally around a stage cross-contaminates
/// concurrent in-process routeChip calls.
SearchCounters searchTally() noexcept;

/// A caller-owned counter sink multiple threads can flush into
/// concurrently. One instance per routing request gives contamination-free
/// per-request (and, via snapshots, per-stage) search effort even when
/// several requests run in the same process at once.
class SharedTally {
 public:
  void add(const SearchCounters& c) noexcept {
    searches_.fetch_add(c.searches, std::memory_order_relaxed);
    expansions_.fetch_add(c.expansions, std::memory_order_relaxed);
    boundedVisits_.fetch_add(c.boundedVisits, std::memory_order_relaxed);
  }
  SearchCounters snapshot() const noexcept {
    return {searches_.load(std::memory_order_relaxed),
            expansions_.load(std::memory_order_relaxed),
            boundedVisits_.load(std::memory_order_relaxed)};
  }

 private:
  std::atomic<std::uint64_t> searches_{0};
  std::atomic<std::uint64_t> expansions_{0};
  std::atomic<std::uint64_t> boundedVisits_{0};
};

/// RAII scope routing this thread's flushed workspace counters into
/// `sink` (in addition to the process tally) until destruction; the
/// previous sink is restored on exit, so scopes nest. Construction and
/// destruction flush the thread's workspace so counts settle into the
/// sink that was active while they accrued.
///
/// The scope is per-thread: pool workers executing tasks on behalf of a
/// request re-install the requesting thread's sink inside the task body
/// (see activeTally()).
class TallyScope {
 public:
  explicit TallyScope(SharedTally* sink) noexcept;
  ~TallyScope() noexcept;

  TallyScope(const TallyScope&) = delete;
  TallyScope& operator=(const TallyScope&) = delete;

 private:
  SharedTally* prev_;
};

/// The calling thread's active sink (nullptr when none). parallelFor
/// bodies capture this before the fan-out and re-install it per task so
/// worker-thread searches are credited to the request that spawned them.
SharedTally* activeTally() noexcept;

/// Reusable scratch memory for the grid-search kernels (A*, the bend-aware
/// variant, and the bounded-length DFS).
///
/// The seed implementation constructed and infinity-filled O(grid cells)
/// vectors on every call; at routing-iteration counts that is the dominant
/// memory traffic. The workspace sizes the arrays once per grid and
/// invalidates them with a generation stamp: a cell's dist/parent entry is
/// meaningful only when stamp[cell] == epoch, so "clearing" a search is a
/// single epoch increment. Each thread owns its own workspace
/// (localWorkspace() hands out a thread_local instance), which is what
/// makes the parallel routing layer allocation- and lock-free on its hot
/// path.
///
/// The members are deliberately public: this is shared scratch for the
/// kernels in astar.cpp / bounded_astar.cpp, not an abstraction boundary.
class RouterWorkspace {
 public:
  /// Ensures every per-cell array covers `g`; resets epochs when the grid
  /// size changes.
  void bind(const grid::Grid& g);

  /// Starts a new search: bumps the epoch (handling wrap-around) and
  /// clears the per-search buffers. Returns the fresh epoch.
  std::uint32_t beginSearch();

  /// Number of cells the workspace is currently sized for.
  std::size_t cellCount() const noexcept { return cells_; }

  // --- per-cell state, valid when stamp[c] == epoch -----------------------
  std::uint32_t epoch = 0;
  std::vector<std::uint32_t> stamp;        ///< dist/parent label stamp
  std::vector<std::uint32_t> targetStamp;  ///< target-set membership stamp
  std::vector<double> dist;
  std::vector<std::int32_t> parent;

  // --- direction-aware overlay (5 states per cell), sized on demand -------
  std::vector<std::uint32_t> stampDir;
  std::vector<double> distDir;
  std::vector<std::int64_t> parentDir;
  void bindDirectional();

  // --- reusable open lists ------------------------------------------------
  /// Binary-heap storage for the double-cost search (history costs).
  struct HeapItem {
    double f;
    double g;
    std::int32_t cell;
    bool operator>(const HeapItem& o) const noexcept { return f > o.f; }
  };
  std::vector<HeapItem> heap;

  /// Binary-heap storage for the direction-aware search.
  struct DirHeapItem {
    double f;
    double g;
    std::int64_t state;
    bool operator>(const DirHeapItem& o) const noexcept { return f > o.f; }
  };
  std::vector<DirHeapItem> dirHeap;

  /// Bucketed open list for the integer-cost (no-history) fast path:
  /// entries keyed by f = g + h, popped in non-decreasing f order (the
  /// Manhattan heuristic is consistent, so f never decreases and a single
  /// forward cursor suffices — Dial's algorithm).
  struct BucketEntry {
    std::int32_t cell;
    std::int32_t g;  ///< g at push time; stale when != dist[cell]
  };
  std::vector<std::vector<BucketEntry>> buckets;
  std::int64_t bucketCursor = 0;  ///< lowest possibly non-empty bucket
  std::int64_t bucketHi = -1;     ///< highest bucket used this search
  void bucketPush(std::int64_t f, BucketEntry e);
  /// Pops the next entry in f order; returns false when the list is empty.
  bool bucketPop(BucketEntry& out);

  // --- speculative-routing support ----------------------------------------
  /// Cells labeled by the last search (indices; may contain duplicates for
  /// the direction-aware variant). The parallel routing layer intersects
  /// this with the set of cells other workers' committed paths changed to
  /// decide whether a speculative result is identical to the serial one.
  std::vector<std::int32_t> touched;

  // --- counters (flushed to the global tally by flushCounters) ------------
  std::uint64_t searches = 0;
  std::uint64_t expansions = 0;
  std::uint64_t boundedVisits = 0;
  void flushCounters() noexcept;
  ~RouterWorkspace() { flushCounters(); }

 private:
  std::size_t cells_ = 0;
};

/// Thread-local workspace: the default scratch for every search kernel, so
/// call sites that do not care about workspaces stay allocation-free and
/// each pool worker automatically owns a private instance.
RouterWorkspace& localWorkspace();

}  // namespace pacor::route
