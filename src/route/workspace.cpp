#include "route/workspace.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

namespace pacor::route {

namespace {

std::atomic<std::uint64_t> gSearches{0};
std::atomic<std::uint64_t> gExpansions{0};
std::atomic<std::uint64_t> gBoundedVisits{0};

thread_local SharedTally* tlTally = nullptr;

}  // namespace

SearchCounters searchTally() noexcept {
  return {gSearches.load(std::memory_order_relaxed),
          gExpansions.load(std::memory_order_relaxed),
          gBoundedVisits.load(std::memory_order_relaxed)};
}

TallyScope::TallyScope(SharedTally* sink) noexcept : prev_(tlTally) {
  // Counts accrued before this scope belong to the previous sink.
  localWorkspace().flushCounters();
  tlTally = sink;
}

TallyScope::~TallyScope() noexcept {
  localWorkspace().flushCounters();
  tlTally = prev_;
}

SharedTally* activeTally() noexcept { return tlTally; }

void RouterWorkspace::flushCounters() noexcept {
  if (searches == 0 && expansions == 0 && boundedVisits == 0) return;
  gSearches.fetch_add(searches, std::memory_order_relaxed);
  gExpansions.fetch_add(expansions, std::memory_order_relaxed);
  gBoundedVisits.fetch_add(boundedVisits, std::memory_order_relaxed);
  if (tlTally != nullptr) tlTally->add({searches, expansions, boundedVisits});
  searches = expansions = boundedVisits = 0;
}

void RouterWorkspace::bind(const grid::Grid& g) {
  const auto cells = static_cast<std::size_t>(g.cellCount());
  if (cells == cells_) return;
  cells_ = cells;
  epoch = 0;
  stamp.assign(cells, 0);
  targetStamp.assign(cells, 0);
  dist.resize(cells);
  parent.resize(cells);
  stampDir.clear();  // directional overlay re-binds on demand
  distDir.clear();
  parentDir.clear();
}

void RouterWorkspace::bindDirectional() {
  const std::size_t states = cells_ * 5;
  if (stampDir.size() == states) return;
  stampDir.assign(states, 0);
  distDir.resize(states);
  parentDir.resize(states);
}

std::uint32_t RouterWorkspace::beginSearch() {
  if (epoch == std::numeric_limits<std::uint32_t>::max()) {
    std::fill(stamp.begin(), stamp.end(), 0);
    std::fill(targetStamp.begin(), targetStamp.end(), 0);
    std::fill(stampDir.begin(), stampDir.end(), 0);
    epoch = 0;
  }
  ++epoch;
  heap.clear();
  dirHeap.clear();
  touched.clear();
  // Unconsumed entries of the previous search live in [cursor, hi]; empty
  // those buckets (keeping their capacity) before the range resets.
  for (std::int64_t f = bucketCursor; f <= bucketHi; ++f)
    buckets[static_cast<std::size_t>(f)].clear();
  bucketCursor = 0;
  bucketHi = -1;
  ++searches;
  // Keep the global tally fresh enough for per-stage deltas without an
  // atomic RMW per expansion.
  flushCounters();
  return epoch;
}

void RouterWorkspace::bucketPush(std::int64_t f, BucketEntry e) {
  if (static_cast<std::size_t>(f) >= buckets.size())
    buckets.resize(static_cast<std::size_t>(f) + 1);
  buckets[static_cast<std::size_t>(f)].push_back(e);
  bucketHi = std::max(bucketHi, f);
}

bool RouterWorkspace::bucketPop(BucketEntry& out) {
  while (bucketCursor <= bucketHi) {
    auto& b = buckets[static_cast<std::size_t>(bucketCursor)];
    if (b.empty()) {
      ++bucketCursor;
      continue;
    }
    out = b.back();
    b.pop_back();
    return true;
  }
  return false;
}

RouterWorkspace& localWorkspace() {
  thread_local RouterWorkspace ws;
  return ws;
}

}  // namespace pacor::route
