#pragma once

#include <cstdint>

#include "grid/obstacle_map.hpp"
#include "route/path.hpp"

namespace pacor::route {

/// Minimum-length *bounded* routing (paper Sec. 6): find a path from
/// source to target whose length is at least `minLength`, and as short as
/// possible above that bound. This is the primitive that detours a too-
/// short channel up to the cluster's [maxL - delta, maxL] window.
struct BoundedAStarRequest {
  Point source;
  Point target;
  grid::NetId net = grid::kFreeCell;   ///< own cells passable
  std::int64_t minLength = 0;          ///< L_t, lower bound on path length
  std::int64_t maxLength = 0;          ///< hard cap (window top, parity-reachable)
};

struct BoundedAStarResult {
  bool success = false;
  Path path;
  std::int64_t length = 0;
};

/// Budgeted depth-first search over *simple* paths (a physical channel
/// cannot self-intersect) with window pruning: a partial path is cut as
/// soon as even its straight-line completion would overshoot maxLength.
/// Neighbor ordering realizes the paper's modified-A* intent -- the under-
/// bound penalty steers away from the target while g + H < minLength and
/// straight home afterwards -- so the first accepted path lands near the
/// window bottom ("minimum" bounded length). On search-budget exhaustion
/// (pathological mazes) the caller falls back to bump insertion
/// (bump_detour.hpp).
class RouterWorkspace;

BoundedAStarResult boundedLengthRoute(const grid::ObstacleMap& obstacles,
                                      const BoundedAStarRequest& request,
                                      RouterWorkspace* workspace = nullptr);

}  // namespace pacor::route
