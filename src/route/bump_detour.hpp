#pragma once

#include <cstdint>

#include "grid/obstacle_map.hpp"
#include "route/path.hpp"

namespace pacor::route {

/// Serpentine ("bump") detour insertion: lengthen an existing routed path
/// to a target window by replacing straight edges with U-shaped excursions
/// into free space. Each bump of depth d adds exactly 2*d to the length,
/// preserving the grid parity invariant, and keeps the path simple by
/// construction. This is the robust fallback behind the bounded-length A*
/// (paper Sec. 6) and mirrors how hand-designed biochips meander control
/// channels for matching.
struct BumpDetourRequest {
  Path path;                          ///< current path (endpoints fixed)
  grid::NetId net = grid::kFreeCell;  ///< cells owned by net are NOT reusable;
                                      ///< only genuinely free cells host bumps
  std::int64_t minLength = 0;         ///< window bottom
  std::int64_t maxLength = 0;         ///< window top
};

struct BumpDetourResult {
  bool success = false;
  Path path;
  std::int64_t length = 0;
};

/// Greedily inserts bumps until the length enters [minLength, maxLength].
/// Fails when free space around the path cannot absorb the needed slack.
/// `obstacles` is read-only; the caller re-commits the returned path.
BumpDetourResult bumpDetour(const grid::ObstacleMap& obstacles,
                            const BumpDetourRequest& request);

}  // namespace pacor::route
