#include "route/bump_detour.hpp"

#include <unordered_set>

namespace pacor::route {
namespace {

/// Largest length in [minLength, maxLength] reachable from `current` by
/// even increments (grid parity invariant), or -1 when the window misses
/// the parity class entirely.
std::int64_t parityTarget(std::int64_t current, std::int64_t minLength,
                          std::int64_t maxLength) {
  if (maxLength < current) return -1;  // bumps only lengthen
  std::int64_t target = maxLength;
  if (((target - current) & 1) != 0) --target;
  if (target < minLength || target < current) return -1;
  return target;
}

}  // namespace

BumpDetourResult bumpDetour(const grid::ObstacleMap& obstacles,
                            const BumpDetourRequest& request) {
  BumpDetourResult result;
  if (!isValidChannel(request.path) || request.path.size() < 2) return result;

  Path path = request.path;
  std::int64_t cur = pathLength(path);
  if (cur >= request.minLength && cur <= request.maxLength) {
    result.success = true;
    result.path = std::move(path);
    result.length = cur;
    return result;
  }

  const std::int64_t target = parityTarget(cur, request.minLength, request.maxLength);
  if (target < 0) return result;
  std::int64_t need = (target - cur) / 2;  // total bump depth still required

  const grid::Grid& g = obstacles.grid();
  std::unordered_set<Point> used(path.begin(), path.end());
  const auto hostable = [&](Point c) {
    return g.inBounds(c) && obstacles.isFree(c) && !used.contains(c);
  };

  while (need > 0) {
    bool progress = false;
    for (std::size_t i = 0; i + 1 < path.size() && need > 0; ++i) {
      const Point a = path[i];
      const Point b = path[i + 1];
      const Point dir = b - a;
      for (const Point perp : {Point{-dir.y, dir.x}, Point{dir.y, -dir.x}}) {
        // Deepest feasible excursion on this side, capped by the need.
        std::int64_t depth = 0;
        while (depth < need) {
          const Point ca = a + perp * static_cast<std::int32_t>(depth + 1);
          const Point cb = b + perp * static_cast<std::int32_t>(depth + 1);
          if (!hostable(ca) || !hostable(cb)) break;
          ++depth;
        }
        if (depth == 0) continue;

        Path bump;
        bump.reserve(static_cast<std::size_t>(2 * depth));
        for (std::int64_t k = 1; k <= depth; ++k)
          bump.push_back(a + perp * static_cast<std::int32_t>(k));
        for (std::int64_t k = depth; k >= 1; --k)
          bump.push_back(b + perp * static_cast<std::int32_t>(k));
        used.insert(bump.begin(), bump.end());
        path.insert(path.begin() + static_cast<std::ptrdiff_t>(i) + 1, bump.begin(),
                    bump.end());
        need -= depth;
        i += static_cast<std::size_t>(2 * depth) + 1;  // resume after the bump
        progress = true;
        break;
      }
    }
    if (!progress) return result;  // no free space anywhere along the path
  }

  result.success = true;
  result.length = pathLength(path);
  result.path = std::move(path);
  return result;
}

}  // namespace pacor::route
