#pragma once

#include <span>
#include <vector>

#include "grid/obstacle_map.hpp"
#include "route/path.hpp"

namespace pacor::util {
class ThreadPool;
}

namespace pacor::route {

/// One tree edge to route: connect terminal set `a` to terminal set `b`.
/// Edges of the same `group` (one Steiner tree / cluster) may share
/// terminal cells (merging nodes); everything else must be cell-disjoint.
struct NegotiationEdge {
  std::vector<Point> a;
  std::vector<Point> b;
  int group = 0;
};

/// Parameters of Algorithm 1 (paper defaults: bg = 1.0, alpha = 0.1,
/// gamma = 10). Each failed iteration updates the history cost of every
/// cell on a routed path as Ch_{r+1} = bg + alpha * Ch_r (Eq. 5), rips all
/// paths up, and retries; cells with high history are avoided unless no
/// alternative exists — the PathFinder negotiation idea applied to
/// detailed routing.
struct NegotiationConfig {
  double baseHistoryCost = 1.0;  ///< bg in Eq. 5
  double alpha = 0.1;            ///< history carry-over in Eq. 5
  int maxIterations = 10;        ///< gamma
};

struct NegotiationResult {
  bool success = false;          ///< all edges routed in the final iteration
  std::vector<Path> paths;       ///< per input edge; empty when that edge failed
  std::vector<bool> routed;      ///< per input edge
  int iterations = 0;            ///< iterations consumed
};

/// Iterative negotiation-based detailed routing (Algorithm 1) of a set of
/// tree edges on top of `obstacles` (static blockages + already-routed
/// nets; not modified — the caller commits successful paths itself).
///
/// With a multi-thread `pool`, each iteration first routes all edges
/// concurrently against the iteration-start occupancy, then commits them
/// in edge order, accepting a speculative path only when no cell its
/// search examined was changed by an earlier commit (re-routing serially
/// otherwise). The result is bit-identical to pool == nullptr.
NegotiationResult negotiatedRoute(const grid::ObstacleMap& obstacles,
                                  std::span<const NegotiationEdge> edges,
                                  const NegotiationConfig& config = {},
                                  util::ThreadPool* pool = nullptr);

}  // namespace pacor::route
