#pragma once

#include <span>
#include <unordered_set>
#include <vector>

#include "grid/obstacle_map.hpp"
#include "route/path.hpp"

namespace pacor::route {

/// Multi-source / multi-target A* request on the routing grid. Covers the
/// paper's point-to-point, point-to-path, and path-to-path search variants
/// uniformly: pass a path's cells as the source and/or target set.
struct AStarRequest {
  std::vector<Point> sources;
  std::vector<Point> targets;
  /// Net being routed: its own occupied cells are passable (tree growth),
  /// everything owned by other nets or obstacles is blocked.
  grid::NetId net = grid::kFreeCell;
  /// Optional per-cell extra cost (negotiation history, Eq. 5); indexed by
  /// Grid::index. Null = plain shortest path.
  const std::vector<double>* historyCost = nullptr;
  /// Optional penalty per direction change. Fabricated PDMS channels
  /// prefer few corners (cleaner molds, lower hydraulic resistance); a
  /// small positive value (< 1) breaks ties among equal-length paths
  /// toward the straightest one, larger values trade length for bends.
  /// 0 keeps the fast direction-agnostic search.
  double bendPenalty = 0.0;
  /// Optional cells this search must not enter even when the map says they
  /// are free. Negotiation uses it to fence off terminals of OTHER edge
  /// groups: those cells are released in its working map so their own
  /// group can connect there, but no foreign path may pass through them.
  const std::unordered_set<Point>* forbidden = nullptr;
};

struct AStarResult {
  bool success = false;
  Path path;          ///< source cell ... target cell (inclusive)
  double cost = 0.0;  ///< accumulated cost (grid steps + history)
};

class RouterWorkspace;

/// Runs A* and returns the cheapest path between the source and target
/// sets. The heuristic is the Manhattan distance to the bounding box of
/// the target set (admissible and consistent; exact for a single target).
///
/// `workspace` is the scratch memory for the search (see workspace.hpp);
/// nullptr uses the calling thread's thread-local instance. Passing one
/// explicitly also exposes the search's touched-cell list, which the
/// parallel routing layer consumes.
AStarResult aStarRoute(const grid::ObstacleMap& obstacles, const AStarRequest& request,
                       RouterWorkspace* workspace = nullptr);

/// Convenience wrapper for a single source/target pair.
AStarResult aStarPointToPoint(const grid::ObstacleMap& obstacles, Point source,
                              Point target, grid::NetId net = grid::kFreeCell,
                              const std::vector<double>* historyCost = nullptr);

}  // namespace pacor::route
