#include "verify/oracle.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace pacor::verify {
namespace {

using geom::Point;

std::string cellStr(Point p) {
  return "(" + std::to_string(p.x) + ", " + std::to_string(p.y) + ")";
}

/// One maximal straight run of channel cells. Normalized so a <= b on the
/// varying axis; a single cell is a degenerate horizontal run.
struct Run {
  std::size_t cluster;
  Point a;
  Point b;
  bool horizontal;
};

/// Collects every violation; the oracle never throws on solution content.
class Oracle {
 public:
  Oracle(const chip::Chip& chip, const core::PacorResult& result)
      : chip_(chip), result_(result) {
    blocked_.reserve(chip.obstacles.size());
    for (const Point p : chip.obstacles) blocked_.insert(p);
    valveAt_.reserve(chip.valves.size());
    for (const chip::Valve& v : chip.valves) valveAt_.emplace(v.pos, v.id);
  }

  OracleReport run() {
    for (std::size_t ci = 0; ci < result_.clusters.size(); ++ci) checkCluster(ci);
    sweepCrossings();
    return std::move(report_);
  }

 private:
  void add(Fault fault, std::size_t cluster, std::string detail) {
    report_.violations.push_back({fault, cluster, std::move(detail)});
  }

  bool onDie(Point p) const {
    return p.x >= 0 && p.y >= 0 && p.x < chip_.routingGrid.width() &&
           p.y < chip_.routingGrid.height();
  }

  bool onDieEdge(Point p) const {
    return onDie(p) && (p.x == 0 || p.y == 0 || p.x == chip_.routingGrid.width() - 1 ||
                        p.y == chip_.routingGrid.height() - 1);
  }

  /// Per-step activation conflict straight from the raw "01X" strings.
  static bool sequencesConflict(const std::string& a, const std::string& b) {
    if (a.size() != b.size()) return true;
    for (std::size_t i = 0; i < a.size(); ++i)
      if (a[i] != 'X' && b[i] != 'X' && a[i] != b[i]) return true;
    return false;
  }

  /// Validates one channel: cells on the die, off blockages, consecutive
  /// cells 4-adjacent, no cell repeated within the channel. Appends the
  /// channel's maximal straight runs for the crossing sweep and its edges
  /// to the cluster connectivity graph.
  void checkChannel(std::size_t ci, const std::vector<Point>& path,
                    std::unordered_map<Point, std::vector<Point>>& adjacency) {
    for (const Point p : path) {
      if (!onDie(p))
        add(Fault::kOffGrid, ci, "channel cell " + cellStr(p) + " outside the die");
      else if (blocked_.contains(p))
        add(Fault::kBlockedCell, ci, "channel cell " + cellStr(p) + " on a blockage");
    }
    std::unordered_set<Point> seen;
    for (const Point p : path)
      if (!seen.insert(p).second) {
        add(Fault::kBadChannel, ci, "channel revisits cell " + cellStr(p));
        break;
      }
    for (std::size_t i = 1; i < path.size(); ++i) {
      const std::int64_t step = std::abs(static_cast<std::int64_t>(path[i].x) - path[i - 1].x) +
                                std::abs(static_cast<std::int64_t>(path[i].y) - path[i - 1].y);
      if (step != 1) {
        add(Fault::kBadChannel, ci,
            "cells " + cellStr(path[i - 1]) + " and " + cellStr(path[i]) +
                " are not 4-adjacent");
      } else {
        adjacency[path[i - 1]].push_back(path[i]);
        adjacency[path[i]].push_back(path[i - 1]);
      }
    }
    if (path.size() == 1) adjacency.try_emplace(path[0]);

    // Maximal straight runs for the segment sweep.
    std::size_t start = 0;
    const auto flush = [&](std::size_t end) {  // run over path[start..end]
      Point a = path[start], b = path[end];
      const bool horizontal = a.y == b.y;
      if (b < a) std::swap(a, b);
      runs_.push_back({ci, a, b, horizontal});
      start = end;
    };
    for (std::size_t i = 2; i < path.size(); ++i) {
      const bool sameLine = (path[i].x == path[start].x && path[i - 1].x == path[start].x) ||
                            (path[i].y == path[start].y && path[i - 1].y == path[start].y);
      if (!sameLine) flush(i - 1);
    }
    if (!path.empty()) flush(path.size() - 1);
  }

  void checkCluster(std::size_t ci) {
    const core::RoutedCluster& c = result_.clusters[ci];

    // Reference legality first: everything later indexes through these.
    bool refsOk = true;
    for (const chip::ValveId v : c.valves) {
      if (v < 0 || static_cast<std::size_t>(v) >= chip_.valves.size()) {
        add(Fault::kBadReference, ci, "unknown valve id " + std::to_string(v));
        refsOk = false;
      } else if (!claimedValves_.insert(v).second) {
        add(Fault::kBadReference, ci,
            "valve " + std::to_string(v) + " already claimed by another cluster");
      }
    }

    std::unordered_map<Point, std::vector<Point>> adjacency;
    for (const auto& path : c.treePaths) checkChannel(ci, path, adjacency);
    checkChannel(ci, c.escapePath, adjacency);

    // Terminal exclusivity: a channel cell sitting on the valve of ANOTHER
    // cluster shorts that valve onto this control line. The router keeps
    // valve cells owned by their cluster from clustering time on, so this
    // only fires on corrupted occupancy bookkeeping (e.g. a reroute that
    // swallowed a foreign endpoint owner). Skipped when the cluster's own
    // valve references are malformed: the own-valve set is meaningless then
    // and every touched valve cell would misreport as foreign.
    if (refsOk) {
      const std::unordered_set<chip::ValveId> own(c.valves.begin(), c.valves.end());
      std::unordered_set<Point> flagged;
      const auto checkForeign = [&](const std::vector<Point>& path) {
        for (const Point p : path) {
          const auto it = valveAt_.find(p);
          if (it == valveAt_.end() || own.contains(it->second)) continue;
          if (!flagged.insert(p).second) continue;
          add(Fault::kForeignValve, ci,
              "channel cell " + cellStr(p) + " sits on foreign valve " +
                  std::to_string(it->second));
        }
      };
      for (const auto& path : c.treePaths) checkForeign(path);
      checkForeign(c.escapePath);
    }

    if (c.pin < 0 || static_cast<std::size_t>(c.pin) >= chip_.pins.size()) {
      add(Fault::kPinMissing, ci, "no valid control pin (id " + std::to_string(c.pin) + ")");
      return;
    }
    const Point pinCell = chip_.pins[static_cast<std::size_t>(c.pin)].pos;
    if (!onDieEdge(pinCell))
      add(Fault::kPinMissing, ci, "pin cell " + cellStr(pinCell) + " not on the die edge");
    const auto [owner, fresh] = pinOwner_.emplace(c.pin, ci);
    if (!fresh)
      add(Fault::kPinShared, ci,
          "pin " + std::to_string(c.pin) + " also drives cluster " +
              std::to_string(owner->second));

    if (!refsOk) return;

    // Constraint (ii): all valves on one pin pairwise non-conflicting.
    for (std::size_t i = 0; i < c.valves.size(); ++i)
      for (std::size_t j = i + 1; j < c.valves.size(); ++j) {
        const auto& a = chip_.valves[static_cast<std::size_t>(c.valves[i])].sequence.str();
        const auto& b = chip_.valves[static_cast<std::size_t>(c.valves[j])].sequence.str();
        if (sequencesConflict(a, b))
          add(Fault::kIncompatible, ci,
              "valves " + std::to_string(c.valves[i]) + " and " +
                  std::to_string(c.valves[j]) + " conflict");
      }

    // Connectivity + recomputed channel lengths: BFS from the pin cell
    // over the channel graph built in checkChannel.
    std::unordered_map<Point, std::int64_t> dist;
    if (adjacency.contains(pinCell)) {
      std::deque<Point> frontier{pinCell};
      dist.emplace(pinCell, 0);
      while (!frontier.empty()) {
        const Point p = frontier.front();
        frontier.pop_front();
        for (const Point q : adjacency.at(p))
          if (dist.emplace(q, dist.at(p) + 1).second) frontier.push_back(q);
      }
    }

    std::vector<std::int64_t> lengths;
    bool allReached = true;
    for (const chip::ValveId v : c.valves) {
      const Point vp = chip_.valves[static_cast<std::size_t>(v)].pos;
      const auto it = dist.find(vp);
      if (it == dist.end()) {
        add(Fault::kDisconnected, ci,
            "valve " + std::to_string(v) + " at " + cellStr(vp) +
                " has no channel to pin " + std::to_string(c.pin));
        allReached = false;
      } else {
        lengths.push_back(it->second);
      }
    }
    if (!allReached) return;

    if (!c.valveLengths.empty()) {
      if (c.valveLengths.size() != lengths.size()) {
        add(Fault::kLengthReport, ci, "reported length list has wrong arity");
      } else {
        for (std::size_t i = 0; i < lengths.size(); ++i)
          if (c.valveLengths[i] != lengths[i])
            add(Fault::kLengthReport, ci,
                "valve " + std::to_string(c.valves[i]) + " reported " +
                    std::to_string(c.valveLengths[i]) + ", geometry says " +
                    std::to_string(lengths[i]));
      }
    }

    // Constraint (iii): |l(vi) - l(vj)| <= delta for claimed matches.
    if (c.lengthMatchRequested && c.lengthMatched && !lengths.empty()) {
      const auto [lo, hi] = std::minmax_element(lengths.begin(), lengths.end());
      if (*hi - *lo > chip_.delta)
        add(Fault::kMatchBroken, ci,
            "recomputed spread " + std::to_string(*hi - *lo) + " exceeds delta " +
                std::to_string(chip_.delta));
    }
  }

  /// Single-layer non-crossing: no cell may carry channels of two pins.
  /// Plane sweep over the maximal straight runs -- three passes that
  /// together cover every way two axis-aligned runs can share a cell:
  /// collinear horizontal overlap (per row), collinear vertical overlap
  /// (per column), and perpendicular intersection (sweep across x with an
  /// active set of horizontal runs). Same-cluster contact is legal (tree
  /// trunks are shared), so only inter-cluster incidents are reported.
  void sweepCrossings() {
    collinearPass(/*horizontal=*/true);
    collinearPass(/*horizontal=*/false);
    perpendicularSweep();
  }

  void addCrossing(const Run& r, const Run& s, Point at) {
    // Report once per ordered cluster pair to keep reports readable.
    const auto key = std::minmax(r.cluster, s.cluster);
    if (!crossingPairs_.insert(key).second) return;
    add(Fault::kCrossing, key.first,
        "channel cell " + cellStr(at) + " shared with cluster " +
            std::to_string(key.second));
  }

  void collinearPass(bool horizontal) {
    // Bucket runs by their fixed axis, then sweep each line with an
    // active-interval scan: a start event while a run of another cluster
    // is still open is a shared cell.
    std::unordered_map<std::int32_t, std::vector<const Run*>> lines;
    for (const Run& r : runs_)
      if (r.horizontal == horizontal) lines[horizontal ? r.a.y : r.a.x].push_back(&r);
    for (auto& [line, rs] : lines) {
      std::sort(rs.begin(), rs.end(), [&](const Run* p, const Run* q) {
        const std::int32_t ps = horizontal ? p->a.x : p->a.y;
        const std::int32_t qs = horizontal ? q->a.x : q->a.y;
        return ps < qs;
      });
      // Open runs, tracked as (end coordinate, run). Intervals are
      // inclusive: [a, b] and [b, c] share cell b.
      std::vector<const Run*> open;
      for (const Run* r : rs) {
        const std::int32_t start = horizontal ? r->a.x : r->a.y;
        std::erase_if(open, [&](const Run* o) {
          return (horizontal ? o->b.x : o->b.y) < start;
        });
        for (const Run* o : open)
          if (o->cluster != r->cluster)
            addCrossing(*o, *r, horizontal ? Point{start, line} : Point{line, start});
        open.push_back(r);
      }
    }
  }

  void perpendicularSweep() {
    // Sweep x left to right: horizontal runs enter at a.x and leave after
    // b.x; every vertical run at the sweep position is tested against the
    // active horizontals' y values.
    struct Event {
      std::int32_t x;
      int kind;  // 0 = open horizontal, 1 = vertical probe, 2 = close horizontal
      const Run* run;
    };
    std::vector<Event> events;
    for (const Run& r : runs_) {
      if (r.horizontal) {
        events.push_back({r.a.x, 0, &r});
        events.push_back({r.b.x, 2, &r});
      } else {
        events.push_back({r.a.x, 1, &r});
      }
    }
    std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
      return a.x != b.x ? a.x < b.x : a.kind < b.kind;
    });
    std::vector<const Run*> active;
    for (const Event& e : events) {
      if (e.kind == 0) {
        active.push_back(e.run);
      } else if (e.kind == 2) {
        std::erase(active, e.run);
      } else {
        for (const Run* h : active)
          if (h->cluster != e.run->cluster && h->a.y >= e.run->a.y &&
              h->a.y <= e.run->b.y)
            addCrossing(*h, *e.run, {e.run->a.x, h->a.y});
      }
    }
  }

  const chip::Chip& chip_;
  const core::PacorResult& result_;
  std::unordered_set<Point> blocked_;
  std::unordered_map<Point, chip::ValveId> valveAt_;
  std::unordered_set<chip::ValveId> claimedValves_;
  std::unordered_map<chip::PinId, std::size_t> pinOwner_;
  std::vector<Run> runs_;
  std::set<std::pair<std::size_t, std::size_t>> crossingPairs_;
  OracleReport report_;
};

}  // namespace

std::string faultName(Fault fault) {
  switch (fault) {
    case Fault::kBadReference: return "bad-reference";
    case Fault::kBadChannel: return "bad-channel";
    case Fault::kOffGrid: return "off-grid";
    case Fault::kBlockedCell: return "blocked-cell";
    case Fault::kCrossing: return "crossing";
    case Fault::kPinMissing: return "pin-missing";
    case Fault::kPinShared: return "pin-shared";
    case Fault::kIncompatible: return "incompatible";
    case Fault::kDisconnected: return "disconnected";
    case Fault::kLengthReport: return "length-report";
    case Fault::kMatchBroken: return "match-broken";
    case Fault::kForeignValve: return "foreign-valve";
  }
  return "unknown";
}

bool OracleReport::has(Fault fault) const noexcept {
  return count(fault) > 0;
}

std::size_t OracleReport::count(Fault fault) const noexcept {
  std::size_t n = 0;
  for (const Violation& v : violations) n += v.fault == fault ? 1 : 0;
  return n;
}

std::string OracleReport::str() const {
  std::ostringstream os;
  if (clean()) {
    os << "oracle: solution verified\n";
    return os.str();
  }
  os << "oracle: " << violations.size() << " violation(s):\n";
  for (const Violation& v : violations)
    os << "  [" << faultName(v.fault) << "] cluster " << v.cluster << ": " << v.detail
       << '\n';
  return os.str();
}

OracleReport verifySolution(const chip::Chip& chip, const core::PacorResult& result) {
  return Oracle(chip, result).run();
}

}  // namespace pacor::verify
