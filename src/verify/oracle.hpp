#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chip/chip.hpp"
#include "pacor/result.hpp"

namespace pacor::verify {

/// Violation classes of the independent solution oracle. They mirror the
/// physical constraints of the paper (Sec. 2), not the router's internal
/// bookkeeping, so one class can correspond to several DRC kinds.
enum class Fault {
  kBadReference,  ///< valve/pin id out of range, or a valve in two clusters
  kBadChannel,    ///< a channel is not a simple 4-adjacent cell sequence
  kOffGrid,       ///< a channel cell outside the die
  kBlockedCell,   ///< a channel cell on a flow-layer blockage
  kCrossing,      ///< channels of two control pins intersect (single layer)
  kPinMissing,    ///< cluster has no pin, or the pin is not a boundary candidate
  kPinShared,     ///< one control pin drives two clusters
  kIncompatible,  ///< activation strings on one pin conflict at some step
  kDisconnected,  ///< a valve has no channel to its control pin
  kLengthReport,  ///< reported per-valve length disagrees with the geometry
  kMatchBroken,   ///< claimed length-matched but recomputed spread > delta
  kForeignValve,  ///< a channel crosses a valve cell of another cluster
};

std::string faultName(Fault fault);

struct Violation {
  Fault fault;
  std::size_t cluster = 0;  ///< index into the solution's cluster list
  std::string detail;
};

struct OracleReport {
  std::vector<Violation> violations;
  bool clean() const noexcept { return violations.empty(); }
  bool has(Fault fault) const noexcept;
  std::size_t count(Fault fault) const noexcept;
  std::string str() const;
};

/// Independent solution oracle: re-validates a routed solution against the
/// raw chip instance using its own geometry and graph code. By design it
/// shares *no* algorithmic code with the router or with pacor::core's DRC:
/// no route:: helpers, no ObstacleMap, no grid:: search structures --
/// bounds are compared against the die extents directly, blockages live in
/// a local hash set, crossing detection runs a segment-intersection sweep
/// over maximal straight channel runs, and connectivity/lengths come from
/// a from-scratch BFS over the cluster's channel graph. A disagreement
/// between this oracle and checkSolution() is therefore a bug in one of
/// them, never a shared blind spot.
///
/// Unlike the DRC (which indexes the chip with throwing accessors), the
/// oracle treats malformed references in the solution -- unknown valve or
/// pin ids, a valve claimed by two clusters -- as kBadReference violations
/// rather than exceptions, so arbitrary parsed `.sol` input can be
/// verified safely.
OracleReport verifySolution(const chip::Chip& chip, const core::PacorResult& result);

}  // namespace pacor::verify
