#include "viz/svg.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pacor::viz {
namespace {

constexpr const char* kPalette[] = {
    "#4E79A7", "#F28E2B", "#E15759", "#76B7B2", "#59A14F", "#EDC948",
    "#B07AA1", "#FF9DA7", "#9C755F", "#BAB0AC", "#1B9E77", "#D95F02",
};
constexpr int kPaletteSize = static_cast<int>(std::size(kPalette));

/// Shared document body; `flow` may be null (single-layer rendering).
std::string renderDocument(const chip::Chip& chip, const chip::FlowLayer* flow,
                           const std::vector<DrawnNet>& nets, int cellSize) {
  const int w = chip.routingGrid.width();
  const int h = chip.routingGrid.height();
  const int s = cellSize;
  std::ostringstream os;
  const auto cx = [&](std::int32_t x) { return x * s + s / 2; };
  // SVG y grows downward; flip so (0,0) renders bottom-left like the paper.
  const auto cy = [&](std::int32_t y) { return (h - 1 - y) * s + s / 2; };

  os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << w * s << "' height='"
     << h * s << "' viewBox='0 0 " << w * s << ' ' << h * s << "'>\n";
  os << "<rect width='100%' height='100%' fill='#FDFDFB'/>\n";
  os << "<rect x='0' y='0' width='" << w * s << "' height='" << h * s
     << "' fill='none' stroke='#444' stroke-width='1'/>\n";

  if (flow != nullptr) {
    // Flow layer underneath: component footprints + channels.
    for (const auto& comp : flow->components) {
      const auto& r = comp.footprint;
      os << "<rect x='" << r.lo.x * s << "' y='" << (h - 1 - r.hi.y) * s
         << "' width='" << (r.hi.x - r.lo.x + 1) * s << "' height='"
         << (r.hi.y - r.lo.y + 1) * s
         << "' fill='#D6E4F0' stroke='#9BB7D4' stroke-width='1'>"
         << "<title>" << comp.kind << "</title></rect>\n";
    }
    for (const auto& channel : flow->channels) {
      os << "<polyline fill='none' stroke='#A8C8E8' stroke-width='"
         << std::max(2, (2 * s) / 3) << "' stroke-linejoin='round' points='";
      for (const auto wp : channel.waypoints) os << cx(wp.x) << ',' << cy(wp.y) << ' ';
      os << "'/>\n";
    }
  } else {
    for (const auto& o : chip.obstacles)
      os << "<rect x='" << o.x * s << "' y='" << (h - 1 - o.y) * s << "' width='" << s
         << "' height='" << s << "' fill='#3A3A3A'/>\n";
  }

  for (const auto& net : nets) {
    const char* color = kPalette[((net.colorIndex % kPaletteSize) + kPaletteSize) %
                                 kPaletteSize];
    for (const auto& path : net.paths) {
      if (path.empty()) continue;
      os << "<polyline fill='none' stroke='" << color << "' stroke-width='"
         << std::max(1, s / 3)
         << "' stroke-linejoin='round' stroke-linecap='round' points='";
      for (const auto p : path) os << cx(p.x) << ',' << cy(p.y) << ' ';
      os << "'";
      if (!net.label.empty())
        os << "><title>" << net.label << "</title></polyline>\n";
      else
        os << "/>\n";
    }
  }

  for (const auto& pin : chip.pins)
    os << "<rect x='" << pin.pos.x * s << "' y='" << (h - 1 - pin.pos.y) * s
       << "' width='" << s << "' height='" << s
       << "' fill='#FFFFFF' stroke='#888' stroke-width='1'/>\n";

  for (const auto& v : chip.valves)
    os << "<circle cx='" << cx(v.pos.x) << "' cy='" << cy(v.pos.y) << "' r='"
       << std::max(2, s / 2) << "' fill='#C0392B' stroke='#7B241C'>"
       << "<title>valve " << v.id << "</title></circle>\n";

  os << "</svg>\n";
  return os.str();
}

void writeDocument(const std::string& path, const std::string& body) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("svg: cannot open " + path);
  f << body;
  if (!f) throw std::runtime_error("svg: write failure on " + path);
}

}  // namespace

std::string renderSvg(const chip::Chip& chip, const std::vector<DrawnNet>& nets,
                      int cellSize) {
  return renderDocument(chip, nullptr, nets, cellSize);
}

std::string renderSvgWithFlow(const chip::Chip& chip, const chip::FlowLayer& flow,
                              const std::vector<DrawnNet>& nets, int cellSize) {
  return renderDocument(chip, &flow, nets, cellSize);
}

void writeSvgFile(const std::string& path, const chip::Chip& chip,
                  const std::vector<DrawnNet>& nets, int cellSize) {
  writeDocument(path, renderSvg(chip, nets, cellSize));
}

void writeSvgFileWithFlow(const std::string& path, const chip::Chip& chip,
                          const chip::FlowLayer& flow,
                          const std::vector<DrawnNet>& nets, int cellSize) {
  writeDocument(path, renderSvgWithFlow(chip, flow, nets, cellSize));
}

}  // namespace pacor::viz
