#pragma once

#include <string>
#include <vector>

#include "chip/chip.hpp"
#include "chip/flow_layer.hpp"
#include "route/path.hpp"

namespace pacor::viz {

/// A routed net to draw: its channel cells plus a stable color index.
struct DrawnNet {
  std::vector<route::Path> paths;
  int colorIndex = 0;
  std::string label;
};

/// Renders a chip and its routed control channels as a standalone SVG
/// document (valves = circles, pins = squares on the boundary, obstacles =
/// dark cells, channels = colored polylines). `cellSize` is the rendered
/// pixel size of a routing cell.
std::string renderSvg(const chip::Chip& chip, const std::vector<DrawnNet>& nets,
                      int cellSize = 6);

/// Writes renderSvg output to a file; throws std::runtime_error on IO
/// failure.
void writeSvgFile(const std::string& path, const chip::Chip& chip,
                  const std::vector<DrawnNet>& nets, int cellSize = 6);

/// Two-layer rendering: the flow layer (channels in light blue, component
/// footprints in pale gray) drawn underneath the control-layer routing,
/// as a fabricated two-layer PDMS chip would look from above.
std::string renderSvgWithFlow(const chip::Chip& chip, const chip::FlowLayer& flow,
                              const std::vector<DrawnNet>& nets, int cellSize = 6);
void writeSvgFileWithFlow(const std::string& path, const chip::Chip& chip,
                          const chip::FlowLayer& flow,
                          const std::vector<DrawnNet>& nets, int cellSize = 6);

}  // namespace pacor::viz
