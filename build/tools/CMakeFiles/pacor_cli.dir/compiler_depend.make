# Empty compiler generated dependencies file for pacor_cli.
# This may be replaced when dependencies are built.
