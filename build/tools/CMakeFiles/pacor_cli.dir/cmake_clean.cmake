file(REMOVE_RECURSE
  "CMakeFiles/pacor_cli.dir/pacor_cli.cpp.o"
  "CMakeFiles/pacor_cli.dir/pacor_cli.cpp.o.d"
  "pacor"
  "pacor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacor_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
