file(REMOVE_RECURSE
  "CMakeFiles/length_matching_demo.dir/length_matching_demo.cpp.o"
  "CMakeFiles/length_matching_demo.dir/length_matching_demo.cpp.o.d"
  "length_matching_demo"
  "length_matching_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/length_matching_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
