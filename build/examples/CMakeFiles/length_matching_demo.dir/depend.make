# Empty dependencies file for length_matching_demo.
# This may be replaced when dependencies are built.
