file(REMOVE_RECURSE
  "CMakeFiles/full_chip_routing.dir/full_chip_routing.cpp.o"
  "CMakeFiles/full_chip_routing.dir/full_chip_routing.cpp.o.d"
  "full_chip_routing"
  "full_chip_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_chip_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
