# Empty compiler generated dependencies file for full_chip_routing.
# This may be replaced when dependencies are built.
