# Empty dependencies file for assay_to_chip.
# This may be replaced when dependencies are built.
