file(REMOVE_RECURSE
  "CMakeFiles/assay_to_chip.dir/assay_to_chip.cpp.o"
  "CMakeFiles/assay_to_chip.dir/assay_to_chip.cpp.o.d"
  "assay_to_chip"
  "assay_to_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assay_to_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
