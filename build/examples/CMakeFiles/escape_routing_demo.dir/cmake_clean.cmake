file(REMOVE_RECURSE
  "CMakeFiles/escape_routing_demo.dir/escape_routing_demo.cpp.o"
  "CMakeFiles/escape_routing_demo.dir/escape_routing_demo.cpp.o.d"
  "escape_routing_demo"
  "escape_routing_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escape_routing_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
