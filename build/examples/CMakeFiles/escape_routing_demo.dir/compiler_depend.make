# Empty compiler generated dependencies file for escape_routing_demo.
# This may be replaced when dependencies are built.
