file(REMOVE_RECURSE
  "CMakeFiles/pressure_sim_demo.dir/pressure_sim_demo.cpp.o"
  "CMakeFiles/pressure_sim_demo.dir/pressure_sim_demo.cpp.o.d"
  "pressure_sim_demo"
  "pressure_sim_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pressure_sim_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
