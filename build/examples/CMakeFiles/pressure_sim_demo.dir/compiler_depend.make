# Empty compiler generated dependencies file for pressure_sim_demo.
# This may be replaced when dependencies are built.
