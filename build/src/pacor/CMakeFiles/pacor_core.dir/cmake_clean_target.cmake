file(REMOVE_RECURSE
  "libpacor_core.a"
)
