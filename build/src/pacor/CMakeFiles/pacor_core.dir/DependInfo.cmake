
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pacor/cluster_routing.cpp" "src/pacor/CMakeFiles/pacor_core.dir/cluster_routing.cpp.o" "gcc" "src/pacor/CMakeFiles/pacor_core.dir/cluster_routing.cpp.o.d"
  "/root/repo/src/pacor/clustering.cpp" "src/pacor/CMakeFiles/pacor_core.dir/clustering.cpp.o" "gcc" "src/pacor/CMakeFiles/pacor_core.dir/clustering.cpp.o.d"
  "/root/repo/src/pacor/detour.cpp" "src/pacor/CMakeFiles/pacor_core.dir/detour.cpp.o" "gcc" "src/pacor/CMakeFiles/pacor_core.dir/detour.cpp.o.d"
  "/root/repo/src/pacor/drc.cpp" "src/pacor/CMakeFiles/pacor_core.dir/drc.cpp.o" "gcc" "src/pacor/CMakeFiles/pacor_core.dir/drc.cpp.o.d"
  "/root/repo/src/pacor/escape.cpp" "src/pacor/CMakeFiles/pacor_core.dir/escape.cpp.o" "gcc" "src/pacor/CMakeFiles/pacor_core.dir/escape.cpp.o.d"
  "/root/repo/src/pacor/mst_routing.cpp" "src/pacor/CMakeFiles/pacor_core.dir/mst_routing.cpp.o" "gcc" "src/pacor/CMakeFiles/pacor_core.dir/mst_routing.cpp.o.d"
  "/root/repo/src/pacor/pipeline.cpp" "src/pacor/CMakeFiles/pacor_core.dir/pipeline.cpp.o" "gcc" "src/pacor/CMakeFiles/pacor_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/pacor/report.cpp" "src/pacor/CMakeFiles/pacor_core.dir/report.cpp.o" "gcc" "src/pacor/CMakeFiles/pacor_core.dir/report.cpp.o.d"
  "/root/repo/src/pacor/solution_io.cpp" "src/pacor/CMakeFiles/pacor_core.dir/solution_io.cpp.o" "gcc" "src/pacor/CMakeFiles/pacor_core.dir/solution_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/pacor_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/pacor_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pacor_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/chip/CMakeFiles/pacor_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/pacor_route.dir/DependInfo.cmake"
  "/root/repo/build/src/dme/CMakeFiles/pacor_dme.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
