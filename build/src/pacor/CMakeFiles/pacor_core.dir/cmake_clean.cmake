file(REMOVE_RECURSE
  "CMakeFiles/pacor_core.dir/cluster_routing.cpp.o"
  "CMakeFiles/pacor_core.dir/cluster_routing.cpp.o.d"
  "CMakeFiles/pacor_core.dir/clustering.cpp.o"
  "CMakeFiles/pacor_core.dir/clustering.cpp.o.d"
  "CMakeFiles/pacor_core.dir/detour.cpp.o"
  "CMakeFiles/pacor_core.dir/detour.cpp.o.d"
  "CMakeFiles/pacor_core.dir/drc.cpp.o"
  "CMakeFiles/pacor_core.dir/drc.cpp.o.d"
  "CMakeFiles/pacor_core.dir/escape.cpp.o"
  "CMakeFiles/pacor_core.dir/escape.cpp.o.d"
  "CMakeFiles/pacor_core.dir/mst_routing.cpp.o"
  "CMakeFiles/pacor_core.dir/mst_routing.cpp.o.d"
  "CMakeFiles/pacor_core.dir/pipeline.cpp.o"
  "CMakeFiles/pacor_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/pacor_core.dir/report.cpp.o"
  "CMakeFiles/pacor_core.dir/report.cpp.o.d"
  "CMakeFiles/pacor_core.dir/solution_io.cpp.o"
  "CMakeFiles/pacor_core.dir/solution_io.cpp.o.d"
  "libpacor_core.a"
  "libpacor_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacor_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
