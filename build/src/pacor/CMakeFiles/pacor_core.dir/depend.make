# Empty dependencies file for pacor_core.
# This may be replaced when dependencies are built.
