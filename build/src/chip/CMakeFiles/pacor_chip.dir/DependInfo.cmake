
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chip/activation.cpp" "src/chip/CMakeFiles/pacor_chip.dir/activation.cpp.o" "gcc" "src/chip/CMakeFiles/pacor_chip.dir/activation.cpp.o.d"
  "/root/repo/src/chip/chip.cpp" "src/chip/CMakeFiles/pacor_chip.dir/chip.cpp.o" "gcc" "src/chip/CMakeFiles/pacor_chip.dir/chip.cpp.o.d"
  "/root/repo/src/chip/design_rules.cpp" "src/chip/CMakeFiles/pacor_chip.dir/design_rules.cpp.o" "gcc" "src/chip/CMakeFiles/pacor_chip.dir/design_rules.cpp.o.d"
  "/root/repo/src/chip/flow_layer.cpp" "src/chip/CMakeFiles/pacor_chip.dir/flow_layer.cpp.o" "gcc" "src/chip/CMakeFiles/pacor_chip.dir/flow_layer.cpp.o.d"
  "/root/repo/src/chip/generator.cpp" "src/chip/CMakeFiles/pacor_chip.dir/generator.cpp.o" "gcc" "src/chip/CMakeFiles/pacor_chip.dir/generator.cpp.o.d"
  "/root/repo/src/chip/io.cpp" "src/chip/CMakeFiles/pacor_chip.dir/io.cpp.o" "gcc" "src/chip/CMakeFiles/pacor_chip.dir/io.cpp.o.d"
  "/root/repo/src/chip/schedule.cpp" "src/chip/CMakeFiles/pacor_chip.dir/schedule.cpp.o" "gcc" "src/chip/CMakeFiles/pacor_chip.dir/schedule.cpp.o.d"
  "/root/repo/src/chip/stats.cpp" "src/chip/CMakeFiles/pacor_chip.dir/stats.cpp.o" "gcc" "src/chip/CMakeFiles/pacor_chip.dir/stats.cpp.o.d"
  "/root/repo/src/chip/synth_spec.cpp" "src/chip/CMakeFiles/pacor_chip.dir/synth_spec.cpp.o" "gcc" "src/chip/CMakeFiles/pacor_chip.dir/synth_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/pacor_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/pacor_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pacor_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
