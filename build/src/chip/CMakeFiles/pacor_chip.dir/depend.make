# Empty dependencies file for pacor_chip.
# This may be replaced when dependencies are built.
