file(REMOVE_RECURSE
  "libpacor_chip.a"
)
