file(REMOVE_RECURSE
  "CMakeFiles/pacor_chip.dir/activation.cpp.o"
  "CMakeFiles/pacor_chip.dir/activation.cpp.o.d"
  "CMakeFiles/pacor_chip.dir/chip.cpp.o"
  "CMakeFiles/pacor_chip.dir/chip.cpp.o.d"
  "CMakeFiles/pacor_chip.dir/design_rules.cpp.o"
  "CMakeFiles/pacor_chip.dir/design_rules.cpp.o.d"
  "CMakeFiles/pacor_chip.dir/flow_layer.cpp.o"
  "CMakeFiles/pacor_chip.dir/flow_layer.cpp.o.d"
  "CMakeFiles/pacor_chip.dir/generator.cpp.o"
  "CMakeFiles/pacor_chip.dir/generator.cpp.o.d"
  "CMakeFiles/pacor_chip.dir/io.cpp.o"
  "CMakeFiles/pacor_chip.dir/io.cpp.o.d"
  "CMakeFiles/pacor_chip.dir/schedule.cpp.o"
  "CMakeFiles/pacor_chip.dir/schedule.cpp.o.d"
  "CMakeFiles/pacor_chip.dir/stats.cpp.o"
  "CMakeFiles/pacor_chip.dir/stats.cpp.o.d"
  "CMakeFiles/pacor_chip.dir/synth_spec.cpp.o"
  "CMakeFiles/pacor_chip.dir/synth_spec.cpp.o.d"
  "libpacor_chip.a"
  "libpacor_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacor_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
