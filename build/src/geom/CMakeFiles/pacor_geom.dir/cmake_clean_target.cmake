file(REMOVE_RECURSE
  "libpacor_geom.a"
)
