file(REMOVE_RECURSE
  "CMakeFiles/pacor_geom.dir/point.cpp.o"
  "CMakeFiles/pacor_geom.dir/point.cpp.o.d"
  "CMakeFiles/pacor_geom.dir/rect.cpp.o"
  "CMakeFiles/pacor_geom.dir/rect.cpp.o.d"
  "CMakeFiles/pacor_geom.dir/tilted.cpp.o"
  "CMakeFiles/pacor_geom.dir/tilted.cpp.o.d"
  "libpacor_geom.a"
  "libpacor_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacor_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
