# Empty compiler generated dependencies file for pacor_geom.
# This may be replaced when dependencies are built.
