# Empty compiler generated dependencies file for pacor_grid.
# This may be replaced when dependencies are built.
