file(REMOVE_RECURSE
  "CMakeFiles/pacor_grid.dir/grid.cpp.o"
  "CMakeFiles/pacor_grid.dir/grid.cpp.o.d"
  "CMakeFiles/pacor_grid.dir/obstacle_map.cpp.o"
  "CMakeFiles/pacor_grid.dir/obstacle_map.cpp.o.d"
  "libpacor_grid.a"
  "libpacor_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacor_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
