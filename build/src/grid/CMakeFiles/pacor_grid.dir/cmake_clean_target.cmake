file(REMOVE_RECURSE
  "libpacor_grid.a"
)
