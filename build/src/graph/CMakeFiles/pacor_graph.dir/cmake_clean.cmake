file(REMOVE_RECURSE
  "CMakeFiles/pacor_graph.dir/clique_partition.cpp.o"
  "CMakeFiles/pacor_graph.dir/clique_partition.cpp.o.d"
  "CMakeFiles/pacor_graph.dir/dsu.cpp.o"
  "CMakeFiles/pacor_graph.dir/dsu.cpp.o.d"
  "CMakeFiles/pacor_graph.dir/max_weight_clique.cpp.o"
  "CMakeFiles/pacor_graph.dir/max_weight_clique.cpp.o.d"
  "CMakeFiles/pacor_graph.dir/min_cost_flow.cpp.o"
  "CMakeFiles/pacor_graph.dir/min_cost_flow.cpp.o.d"
  "CMakeFiles/pacor_graph.dir/mst.cpp.o"
  "CMakeFiles/pacor_graph.dir/mst.cpp.o.d"
  "CMakeFiles/pacor_graph.dir/selection.cpp.o"
  "CMakeFiles/pacor_graph.dir/selection.cpp.o.d"
  "CMakeFiles/pacor_graph.dir/steiner.cpp.o"
  "CMakeFiles/pacor_graph.dir/steiner.cpp.o.d"
  "libpacor_graph.a"
  "libpacor_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacor_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
