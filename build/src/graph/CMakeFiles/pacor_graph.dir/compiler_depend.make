# Empty compiler generated dependencies file for pacor_graph.
# This may be replaced when dependencies are built.
