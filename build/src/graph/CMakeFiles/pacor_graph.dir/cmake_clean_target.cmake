file(REMOVE_RECURSE
  "libpacor_graph.a"
)
