
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/clique_partition.cpp" "src/graph/CMakeFiles/pacor_graph.dir/clique_partition.cpp.o" "gcc" "src/graph/CMakeFiles/pacor_graph.dir/clique_partition.cpp.o.d"
  "/root/repo/src/graph/dsu.cpp" "src/graph/CMakeFiles/pacor_graph.dir/dsu.cpp.o" "gcc" "src/graph/CMakeFiles/pacor_graph.dir/dsu.cpp.o.d"
  "/root/repo/src/graph/max_weight_clique.cpp" "src/graph/CMakeFiles/pacor_graph.dir/max_weight_clique.cpp.o" "gcc" "src/graph/CMakeFiles/pacor_graph.dir/max_weight_clique.cpp.o.d"
  "/root/repo/src/graph/min_cost_flow.cpp" "src/graph/CMakeFiles/pacor_graph.dir/min_cost_flow.cpp.o" "gcc" "src/graph/CMakeFiles/pacor_graph.dir/min_cost_flow.cpp.o.d"
  "/root/repo/src/graph/mst.cpp" "src/graph/CMakeFiles/pacor_graph.dir/mst.cpp.o" "gcc" "src/graph/CMakeFiles/pacor_graph.dir/mst.cpp.o.d"
  "/root/repo/src/graph/selection.cpp" "src/graph/CMakeFiles/pacor_graph.dir/selection.cpp.o" "gcc" "src/graph/CMakeFiles/pacor_graph.dir/selection.cpp.o.d"
  "/root/repo/src/graph/steiner.cpp" "src/graph/CMakeFiles/pacor_graph.dir/steiner.cpp.o" "gcc" "src/graph/CMakeFiles/pacor_graph.dir/steiner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/pacor_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
