file(REMOVE_RECURSE
  "libpacor_route.a"
)
