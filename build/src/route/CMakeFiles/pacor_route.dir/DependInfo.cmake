
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/route/astar.cpp" "src/route/CMakeFiles/pacor_route.dir/astar.cpp.o" "gcc" "src/route/CMakeFiles/pacor_route.dir/astar.cpp.o.d"
  "/root/repo/src/route/bounded_astar.cpp" "src/route/CMakeFiles/pacor_route.dir/bounded_astar.cpp.o" "gcc" "src/route/CMakeFiles/pacor_route.dir/bounded_astar.cpp.o.d"
  "/root/repo/src/route/bump_detour.cpp" "src/route/CMakeFiles/pacor_route.dir/bump_detour.cpp.o" "gcc" "src/route/CMakeFiles/pacor_route.dir/bump_detour.cpp.o.d"
  "/root/repo/src/route/negotiation.cpp" "src/route/CMakeFiles/pacor_route.dir/negotiation.cpp.o" "gcc" "src/route/CMakeFiles/pacor_route.dir/negotiation.cpp.o.d"
  "/root/repo/src/route/path.cpp" "src/route/CMakeFiles/pacor_route.dir/path.cpp.o" "gcc" "src/route/CMakeFiles/pacor_route.dir/path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/pacor_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/pacor_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
