# Empty compiler generated dependencies file for pacor_route.
# This may be replaced when dependencies are built.
