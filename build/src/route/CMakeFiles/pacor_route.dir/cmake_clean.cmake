file(REMOVE_RECURSE
  "CMakeFiles/pacor_route.dir/astar.cpp.o"
  "CMakeFiles/pacor_route.dir/astar.cpp.o.d"
  "CMakeFiles/pacor_route.dir/bounded_astar.cpp.o"
  "CMakeFiles/pacor_route.dir/bounded_astar.cpp.o.d"
  "CMakeFiles/pacor_route.dir/bump_detour.cpp.o"
  "CMakeFiles/pacor_route.dir/bump_detour.cpp.o.d"
  "CMakeFiles/pacor_route.dir/negotiation.cpp.o"
  "CMakeFiles/pacor_route.dir/negotiation.cpp.o.d"
  "CMakeFiles/pacor_route.dir/path.cpp.o"
  "CMakeFiles/pacor_route.dir/path.cpp.o.d"
  "libpacor_route.a"
  "libpacor_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacor_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
