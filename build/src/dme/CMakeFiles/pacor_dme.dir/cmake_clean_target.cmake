file(REMOVE_RECURSE
  "libpacor_dme.a"
)
