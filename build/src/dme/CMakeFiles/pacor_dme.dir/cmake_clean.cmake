file(REMOVE_RECURSE
  "CMakeFiles/pacor_dme.dir/candidate_tree.cpp.o"
  "CMakeFiles/pacor_dme.dir/candidate_tree.cpp.o.d"
  "CMakeFiles/pacor_dme.dir/merging.cpp.o"
  "CMakeFiles/pacor_dme.dir/merging.cpp.o.d"
  "CMakeFiles/pacor_dme.dir/topology.cpp.o"
  "CMakeFiles/pacor_dme.dir/topology.cpp.o.d"
  "libpacor_dme.a"
  "libpacor_dme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacor_dme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
