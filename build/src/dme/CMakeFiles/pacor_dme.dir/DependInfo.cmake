
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dme/candidate_tree.cpp" "src/dme/CMakeFiles/pacor_dme.dir/candidate_tree.cpp.o" "gcc" "src/dme/CMakeFiles/pacor_dme.dir/candidate_tree.cpp.o.d"
  "/root/repo/src/dme/merging.cpp" "src/dme/CMakeFiles/pacor_dme.dir/merging.cpp.o" "gcc" "src/dme/CMakeFiles/pacor_dme.dir/merging.cpp.o.d"
  "/root/repo/src/dme/topology.cpp" "src/dme/CMakeFiles/pacor_dme.dir/topology.cpp.o" "gcc" "src/dme/CMakeFiles/pacor_dme.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/pacor_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/pacor_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/pacor_route.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
