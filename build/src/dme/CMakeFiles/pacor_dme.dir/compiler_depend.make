# Empty compiler generated dependencies file for pacor_dme.
# This may be replaced when dependencies are built.
