file(REMOVE_RECURSE
  "CMakeFiles/pacor_viz.dir/svg.cpp.o"
  "CMakeFiles/pacor_viz.dir/svg.cpp.o.d"
  "libpacor_viz.a"
  "libpacor_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacor_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
