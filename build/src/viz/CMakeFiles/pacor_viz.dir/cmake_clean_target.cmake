file(REMOVE_RECURSE
  "libpacor_viz.a"
)
