# Empty compiler generated dependencies file for pacor_viz.
# This may be replaced when dependencies are built.
