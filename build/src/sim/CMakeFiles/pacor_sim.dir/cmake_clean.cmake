file(REMOVE_RECURSE
  "CMakeFiles/pacor_sim.dir/analysis.cpp.o"
  "CMakeFiles/pacor_sim.dir/analysis.cpp.o.d"
  "CMakeFiles/pacor_sim.dir/pressure.cpp.o"
  "CMakeFiles/pacor_sim.dir/pressure.cpp.o.d"
  "libpacor_sim.a"
  "libpacor_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacor_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
