# Empty compiler generated dependencies file for pacor_sim.
# This may be replaced when dependencies are built.
