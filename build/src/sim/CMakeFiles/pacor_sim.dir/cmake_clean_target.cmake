file(REMOVE_RECURSE
  "libpacor_sim.a"
)
