file(REMOVE_RECURSE
  "CMakeFiles/mst_routing_test.dir/mst_routing_test.cpp.o"
  "CMakeFiles/mst_routing_test.dir/mst_routing_test.cpp.o.d"
  "mst_routing_test"
  "mst_routing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mst_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
