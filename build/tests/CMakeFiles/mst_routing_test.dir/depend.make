# Empty dependencies file for mst_routing_test.
# This may be replaced when dependencies are built.
