file(REMOVE_RECURSE
  "CMakeFiles/escape_exact_test.dir/escape_exact_test.cpp.o"
  "CMakeFiles/escape_exact_test.dir/escape_exact_test.cpp.o.d"
  "escape_exact_test"
  "escape_exact_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escape_exact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
