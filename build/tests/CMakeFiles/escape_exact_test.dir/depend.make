# Empty dependencies file for escape_exact_test.
# This may be replaced when dependencies are built.
