file(REMOVE_RECURSE
  "CMakeFiles/cluster_routing_test.dir/cluster_routing_test.cpp.o"
  "CMakeFiles/cluster_routing_test.dir/cluster_routing_test.cpp.o.d"
  "cluster_routing_test"
  "cluster_routing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
