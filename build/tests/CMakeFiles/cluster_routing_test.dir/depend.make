# Empty dependencies file for cluster_routing_test.
# This may be replaced when dependencies are built.
