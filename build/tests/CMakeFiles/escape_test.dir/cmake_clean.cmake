file(REMOVE_RECURSE
  "CMakeFiles/escape_test.dir/escape_test.cpp.o"
  "CMakeFiles/escape_test.dir/escape_test.cpp.o.d"
  "escape_test"
  "escape_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
