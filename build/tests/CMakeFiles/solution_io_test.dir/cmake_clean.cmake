file(REMOVE_RECURSE
  "CMakeFiles/solution_io_test.dir/solution_io_test.cpp.o"
  "CMakeFiles/solution_io_test.dir/solution_io_test.cpp.o.d"
  "solution_io_test"
  "solution_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solution_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
