# Empty compiler generated dependencies file for solution_io_test.
# This may be replaced when dependencies are built.
