# Empty dependencies file for pacor_test.
# This may be replaced when dependencies are built.
