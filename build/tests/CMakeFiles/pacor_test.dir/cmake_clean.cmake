file(REMOVE_RECURSE
  "CMakeFiles/pacor_test.dir/pacor_test.cpp.o"
  "CMakeFiles/pacor_test.dir/pacor_test.cpp.o.d"
  "pacor_test"
  "pacor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
