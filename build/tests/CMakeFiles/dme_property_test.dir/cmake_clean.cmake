file(REMOVE_RECURSE
  "CMakeFiles/dme_property_test.dir/dme_property_test.cpp.o"
  "CMakeFiles/dme_property_test.dir/dme_property_test.cpp.o.d"
  "dme_property_test"
  "dme_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dme_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
