# Empty dependencies file for dme_property_test.
# This may be replaced when dependencies are built.
