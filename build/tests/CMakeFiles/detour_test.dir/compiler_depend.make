# Empty compiler generated dependencies file for detour_test.
# This may be replaced when dependencies are built.
