file(REMOVE_RECURSE
  "CMakeFiles/detour_test.dir/detour_test.cpp.o"
  "CMakeFiles/detour_test.dir/detour_test.cpp.o.d"
  "detour_test"
  "detour_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detour_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
