# Empty dependencies file for route_property_test.
# This may be replaced when dependencies are built.
