file(REMOVE_RECURSE
  "CMakeFiles/route_property_test.dir/route_property_test.cpp.o"
  "CMakeFiles/route_property_test.dir/route_property_test.cpp.o.d"
  "route_property_test"
  "route_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
