file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_negotiation.dir/bench_ablation_negotiation.cpp.o"
  "CMakeFiles/bench_ablation_negotiation.dir/bench_ablation_negotiation.cpp.o.d"
  "bench_ablation_negotiation"
  "bench_ablation_negotiation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_negotiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
