# Empty dependencies file for bench_ablation_negotiation.
# This may be replaced when dependencies are built.
