file(REMOVE_RECURSE
  "CMakeFiles/bench_pressure_skew.dir/bench_pressure_skew.cpp.o"
  "CMakeFiles/bench_pressure_skew.dir/bench_pressure_skew.cpp.o.d"
  "bench_pressure_skew"
  "bench_pressure_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pressure_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
