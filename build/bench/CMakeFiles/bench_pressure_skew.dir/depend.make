# Empty dependencies file for bench_pressure_skew.
# This may be replaced when dependencies are built.
