
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_flow_stages.cpp" "bench/CMakeFiles/bench_flow_stages.dir/bench_flow_stages.cpp.o" "gcc" "bench/CMakeFiles/bench_flow_stages.dir/bench_flow_stages.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pacor/CMakeFiles/pacor_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dme/CMakeFiles/pacor_dme.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/pacor_route.dir/DependInfo.cmake"
  "/root/repo/build/src/chip/CMakeFiles/pacor_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pacor_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/pacor_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/pacor_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pacor_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
