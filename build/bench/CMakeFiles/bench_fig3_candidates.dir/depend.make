# Empty dependencies file for bench_fig3_candidates.
# This may be replaced when dependencies are built.
