// pacor -- command-line front end of the PACOR control-layer router.
//
//   pacor generate <design|params...> <out.chip>   synthesize an instance
//   pacor route <in.chip> <out.sol> [--variant=pacor|wosel|detour-first]
//   pacor diff <a.chip> <b.chip> [out.delta]       edit script A -> B
//   pacor serve [--batch=<manifest>]               long-lived request loop
//   pacor serve --listen=<host:port>               TCP front end (framed)
//   pacor check <in.chip> <in.sol>                 independent DRC verify
//   pacor svg <in.chip> <in.sol> <out.svg>         render a routed chip
//   pacor table1                                   print Table 1
//   pacor table2                                   print Table 2 (slow)
//
// Exit code 0 on success / clean DRC, 1 on routing failure or violations,
// 2 on usage errors.

#include <array>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "chip/delta.hpp"
#include "chip/generator.hpp"
#include "chip/io.hpp"
#include "chip/stats.hpp"
#include "chip/synth_spec.hpp"
#include "pacor/drc.hpp"
#include "pacor/eco.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/report.hpp"
#include "pacor/solution_io.hpp"
#include "serve/net.hpp"
#include "serve/serve.hpp"
#include "trace/trace.hpp"
#include "verify/oracle.hpp"
#include "viz/svg.hpp"

namespace {

using namespace pacor;

int usage() {
  std::cerr <<
      "usage:\n"
      "  pacor generate <Chip1|Chip2|S1..S5> <out.chip>   (alias: gen)\n"
      "  pacor gen --fpva=NxM[,key=val...] <out.chip>\n"
      "              N x M fully programmable valve array; keys: pitch,\n"
      "              margin, block=RxC (cluster block), lm (% matched),\n"
      "              obs (per-mille obstacle density), pins (extra), seq,\n"
      "              delta, seed. `fpva:NxM:key=val` works too, including\n"
      "              as a design token on serve manifest lines\n"
      "  pacor synth <in.synth> <out.chip>\n"
      "  pacor info <in.chip>\n"
      "  pacor route <in.chip> <out.sol> [--variant=pacor|wosel|detour-first]\n"
      "              [--jobs=N]   (N worker threads; 0 = all cores; same result)\n"
      "              [--trace=out.json]   (Chrome trace_event timeline of the run)\n"
      "              [--trace-level=stage|cluster|search]   (default cluster)\n"
      "              [--metrics=out.json]   (every pipeline counter of the run)\n"
      "              [--no-incremental-escape]   (rebuild the escape flow\n"
      "               network every rip-up round instead of warm-restarting\n"
      "               one persistent session; same result, more work)\n"
      "              [--fast-escape]   (multi-augmenting escape-flow solver:\n"
      "               same routed count and escape cost, but equal-cost ties\n"
      "               may pick different paths -- validate with `pacor verify`)\n"
      "              [--eco=DELTA]   (ECO mode: route <in.chip>, apply the edit\n"
      "               script DELTA, then incrementally re-route only the\n"
      "               affected clusters; <out.sol> holds the edited chip's\n"
      "               solution)\n"
      "              [--eco-from=PREV.sol]   (with --eco: reuse a previous\n"
      "               solution of <in.chip> instead of routing it first)\n"
      "  pacor diff <a.chip> <b.chip> [out.delta]\n"
      "              minimal edit script turning A into B (stdout when no\n"
      "              output file is given); feed it back via route --eco or\n"
      "              the serve eco verb\n"
      "  pacor serve [--batch=FILE] [--jobs=N] [--concurrency=N]\n"
      "              [--deadline-ms=D] [--max-designs=N]\n"
      "              long-lived request loop: routes one request per manifest\n"
      "              line (from FILE, or stdin when --batch is omitted or '-'),\n"
      "              reusing one worker pool and per-design contexts across\n"
      "              requests. Line: <design|file.chip> [sol=P] [metrics=P]\n"
      "              [trace=P] [trace-level=L] [variant=V] [no-incremental-escape]\n"
      "              [fast-escape] [deadline_ms=D], `eco <design> delta=FILE\n"
      "              [options]` to advance a cached design through an edit\n"
      "              script, or `gen <design>` to pre-warm a design context\n"
      "  pacor serve --listen=HOST:PORT [--jobs=N] [--max-inflight=N]\n"
      "              [--max-queue=N] [--deadline-ms=D] [--max-designs=N]\n"
      "              TCP front end speaking the same request lines, length-\n"
      "              framed (4-byte big-endian length + line). Per-design FIFO\n"
      "              queues pin repeat traffic to warm contexts; past the\n"
      "              --max-queue high-water mark (0 = unbounded) requests get\n"
      "              `busy` responses; SIGTERM drains gracefully.\n"
      "              --deadline-ms sets a default per-request deadline (0 =\n"
      "              none; requests may override via deadline_ms=); expired\n"
      "              requests answer `err <design> field=deadline ...` and a\n"
      "              watchdog recycles any dispatcher stuck past its deadline.\n"
      "              --max-designs bounds the warm-context LRU cache (0 =\n"
      "              unlimited; in-flight designs are never evicted)\n"
      "  pacor check <in.chip> <in.sol>\n"
      "  pacor verify <in.chip> <in.sol>   (independent oracle + DRC cross-check)\n"
      "  pacor svg <in.chip> <in.sol> <out.svg>\n"
      "  pacor table1 [--effort]   (--effort also routes and prints search effort)\n"
      "  pacor table2\n";
  return 2;
}

std::optional<chip::GeneratorParams> findDesign(const std::string& name) {
  for (const auto& params : chip::table1Designs())
    if (params.name == name) return params;
  return std::nullopt;
}

int cmdGenerate(int argc, char** argv) {
  if (argc != 2) return usage();
  const std::string what = argv[0];
  chip::Chip c;
  if (what.rfind("--fpva=", 0) == 0 || chip::isFpvaSpec(what)) {
    const std::string spec =
        what.rfind("--fpva=", 0) == 0 ? what.substr(7) : what;
    c = chip::generateFpvaChip(chip::parseFpvaSpec(spec));
  } else if (const auto params = findDesign(what)) {
    c = chip::generateChip(*params);
  } else {
    std::cerr << "unknown design '" << what
              << "' (want Chip1|Chip2|S1..S5, --fpva=NxM[...], or fpva:NxM[...])\n";
    return 2;
  }
  chip::writeChipFile(argv[1], c);
  std::cout << "wrote " << argv[1] << " (" << c.routingGrid.width() << "x"
            << c.routingGrid.height() << " grid, " << c.valves.size()
            << " valves, " << c.pins.size() << " pins, " << c.obstacles.size()
            << " obstacle cells)\n";
  return 0;
}

int cmdSynth(int argc, char** argv) {
  if (argc != 2) return usage();
  const chip::SynthSpec spec = chip::readSynthSpecFile(argv[0]);
  const chip::Chip c = chip::buildChip(spec);
  chip::writeChipFile(argv[1], c);
  std::cout << "synthesized " << argv[1] << " from spec '" << spec.name << "' ("
            << c.valves.size() << " valves, " << c.obstacles.size()
            << " obstacle cells from the flow layer)\n";
  return 0;
}

int cmdInfo(int argc, char** argv) {
  if (argc != 1) return usage();
  const chip::Chip c = chip::readChipFile(argv[0]);
  std::cout << chip::computeStats(c);
  return 0;
}

int cmdRoute(int argc, char** argv) {
  if (argc < 2 || argc > 11) return usage();
  core::PacorConfig cfg = core::pacorDefaultConfig();
  int jobs = 1;
  bool incrementalEscape = true;
  bool fastEscape = false;
  std::string tracePath;
  std::string metricsPath;
  std::string ecoDeltaPath;
  std::string ecoFromPath;
  trace::Level traceLevel = trace::Level::kCluster;
  for (int i = 2; i < argc; ++i) {
    const std::string v = argv[i];
    if (v == "--variant=pacor") {
    } else if (v == "--variant=wosel") {
      cfg = core::withoutSelectionConfig();
    } else if (v == "--variant=detour-first") {
      cfg = core::detourFirstConfig();
    } else if (v.rfind("--jobs=", 0) == 0) {
      try {
        jobs = std::stoi(v.substr(7));
      } catch (const std::exception&) {
        return usage();
      }
      if (jobs < 0) return usage();
    } else if (v.rfind("--trace=", 0) == 0) {
      tracePath = v.substr(8);
      if (tracePath.empty()) return usage();
    } else if (v.rfind("--trace-level=", 0) == 0) {
      const auto level = trace::parseLevel(v.substr(14));
      if (!level) return usage();
      traceLevel = *level;
    } else if (v.rfind("--metrics=", 0) == 0) {
      metricsPath = v.substr(10);
      if (metricsPath.empty()) return usage();
    } else if (v == "--no-incremental-escape") {
      incrementalEscape = false;  // applied after the loop: --variant=
                                  // resets cfg wholesale
    } else if (v == "--fast-escape") {
      fastEscape = true;
    } else if (v.rfind("--eco=", 0) == 0) {
      ecoDeltaPath = v.substr(6);
      if (ecoDeltaPath.empty()) return usage();
    } else if (v.rfind("--eco-from=", 0) == 0) {
      ecoFromPath = v.substr(11);
      if (ecoFromPath.empty()) return usage();
    } else {
      return usage();
    }
  }
  if (!ecoFromPath.empty() && ecoDeltaPath.empty()) return usage();
  cfg.jobs = jobs;
  cfg.incrementalEscape = incrementalEscape;
  cfg.fastEscape = fastEscape;
  const chip::Chip c = chip::readChipFile(argv[0]);
  if (!tracePath.empty()) trace::beginSession(traceLevel);
  core::PacorResult result;
  if (ecoDeltaPath.empty()) {
    result = core::routeChip(c, cfg);
  } else {
    const chip::ChipDelta delta = chip::readDeltaFile(ecoDeltaPath);
    const core::PacorResult prev = ecoFromPath.empty()
                                       ? core::routeChip(c, cfg)
                                       : core::readSolutionFile(ecoFromPath);
    core::EcoInfo info;
    result = core::rerouteChip(c, prev, delta, cfg, {}, &info);
    const char* mode = info.mode == core::EcoInfo::Mode::kIdentity ? "identity"
                       : info.mode == core::EcoInfo::Mode::kIncremental
                           ? "incremental"
                           : "full";
    std::cout << "eco: mode " << mode << ", " << info.dirtyClusters
              << " dirty / " << info.frozenClusters << " reused cluster(s)";
    if (info.fellBack) std::cout << " (fell back: " << info.fullReason << ")";
    else if (!info.fullReason.empty()) std::cout << " (" << info.fullReason << ")";
    std::cout << '\n';
  }
  if (!tracePath.empty()) {
    const auto events = trace::endSession();
    if (!trace::writeChromeTrace(tracePath, events)) {
      std::cerr << "error: cannot write trace file " << tracePath << '\n';
      return 1;
    }
    std::cout << "wrote " << tracePath << " (" << events.size() << " spans)\n";
  }
  if (!metricsPath.empty()) {
    std::ofstream out(metricsPath);
    out << "{\n  \"design\": \"" << result.design << "\",\n  \"metrics\": "
        << result.metrics.toJson(/*pretty=*/true) << "\n}\n";
    if (!out) {
      std::cerr << "error: cannot write metrics file " << metricsPath << '\n';
      return 1;
    }
    std::cout << "wrote " << metricsPath << '\n';
  }
  core::writeSolutionFile(argv[1], result);
  std::cout << core::describeResult(result);
  std::cout << "wrote " << argv[1] << '\n';
  return result.complete ? 0 : 1;
}

int cmdDiff(int argc, char** argv) {
  if (argc < 2 || argc > 3) return usage();
  const chip::Chip a = chip::readChipFile(argv[0]);
  const chip::Chip b = chip::readChipFile(argv[1]);
  const chip::ChipDelta delta = chip::diff(a, b);
  if (argc == 3) {
    chip::writeDeltaFile(argv[2], delta);
    std::cout << "wrote " << argv[2] << " (" << delta.ops.size() << " op(s))\n";
  } else {
    std::cout << chip::deltaToString(delta);
  }
  return 0;
}

int cmdServe(int argc, char** argv) {
  serve::BatchOptions opt;
  serve::net::NetOptions netOpt;
  std::string batchPath = "-";
  std::string listen;
  for (int i = 0; i < argc; ++i) {
    const std::string v = argv[i];
    try {
      if (v.rfind("--batch=", 0) == 0) {
        batchPath = v.substr(8);
        if (batchPath.empty()) return usage();
      } else if (v.rfind("--listen=", 0) == 0) {
        listen = v.substr(9);
        if (listen.empty()) return usage();
      } else if (v.rfind("--jobs=", 0) == 0) {
        opt.jobs = std::stoi(v.substr(7));
        if (opt.jobs < 0) return usage();
      } else if (v.rfind("--concurrency=", 0) == 0) {
        opt.concurrency = std::stoi(v.substr(14));
        if (opt.concurrency < 1) return usage();
      } else if (v.rfind("--max-inflight=", 0) == 0) {
        netOpt.admission.maxInflight = std::stoi(v.substr(15));
        if (netOpt.admission.maxInflight < 1) return usage();
      } else if (v.rfind("--max-queue=", 0) == 0) {
        const int maxQueue = std::stoi(v.substr(12));
        if (maxQueue < 0) return usage();
        netOpt.admission.maxQueue = static_cast<std::size_t>(maxQueue);
      } else if (v.rfind("--deadline-ms=", 0) == 0) {
        const long long ms = std::stoll(v.substr(14));
        if (ms < 0 || ms > serve::kMaxDeadlineMs) return usage();
        opt.defaultDeadlineMs = ms;
        netOpt.admission.defaultDeadlineMs = ms;
      } else if (v.rfind("--max-designs=", 0) == 0) {
        const long long cap = std::stoll(v.substr(14));
        if (cap < 0) return usage();
        opt.maxDesigns = static_cast<std::size_t>(cap);
        netOpt.admission.maxDesigns = static_cast<std::size_t>(cap);
      } else if (v == "--allow-fifo-designs") {
        // TEST-ONLY: lets liveness smoke tests park a request on a named
        // pipe; production loads reject non-regular files.
        opt.allowFifoDesigns = true;
        netOpt.admission.allowFifoDesigns = true;
      } else {
        return usage();
      }
    } catch (const std::exception&) {
      return usage();
    }
  }
  if (!listen.empty()) {
    const std::size_t colon = listen.rfind(':');
    if (colon == std::string::npos) return usage();
    netOpt.host = listen.substr(0, colon);
    const int port = std::stoi(listen.substr(colon + 1));
    if (netOpt.host.empty() || port < 0 || port > 65535) return usage();
    netOpt.port = static_cast<std::uint16_t>(port);
    netOpt.jobs = opt.jobs;
    return serve::net::serveForever(netOpt);
  }
  if (batchPath == "-") return serve::runBatch(std::cin, std::cout, opt) == 0 ? 0 : 1;
  std::ifstream manifest(batchPath);
  if (!manifest) {
    std::cerr << "error: cannot read manifest " << batchPath << '\n';
    return 2;
  }
  return serve::runBatch(manifest, std::cout, opt) == 0 ? 0 : 1;
}

int cmdCheck(int argc, char** argv) {
  if (argc != 2) return usage();
  const chip::Chip c = chip::readChipFile(argv[0]);
  const core::PacorResult result = core::readSolutionFile(argv[1]);
  const core::DrcReport report = core::checkSolution(c, result);
  std::cout << report.str();
  return report.clean() ? 0 : 1;
}

int cmdVerify(int argc, char** argv) {
  if (argc != 2) return usage();
  const chip::Chip c = chip::readChipFile(argv[0]);
  const core::PacorResult result = core::readSolutionFile(argv[1]);
  const verify::OracleReport oracle = verify::verifySolution(c, result);
  const core::DrcReport drc = core::checkSolution(c, result);
  std::cout << oracle.str();
  std::cout << "drc: " << (drc.clean() ? "clean\n" : drc.str());
  if (oracle.clean() != drc.clean()) {
    std::cerr << "DISAGREEMENT: oracle says " << (oracle.clean() ? "clean" : "dirty")
              << ", drc says " << (drc.clean() ? "clean" : "dirty")
              << " -- one of the checkers has a bug; please report this "
                 "chip/solution pair\n";
    return 1;
  }
  return oracle.clean() ? 0 : 1;
}

int cmdSvg(int argc, char** argv) {
  if (argc != 3) return usage();
  const chip::Chip c = chip::readChipFile(argv[0]);
  const core::PacorResult result = core::readSolutionFile(argv[1]);
  std::vector<viz::DrawnNet> nets;
  for (std::size_t i = 0; i < result.clusters.size(); ++i) {
    viz::DrawnNet net;
    net.colorIndex = static_cast<int>(i);
    net.label = "cluster " + std::to_string(i);
    net.paths = result.clusters[i].treePaths;
    net.paths.push_back(result.clusters[i].escapePath);
    nets.push_back(std::move(net));
  }
  viz::writeSvgFile(argv[2], c, nets, 6);
  std::cout << "wrote " << argv[2] << '\n';
  return 0;
}

int cmdTable1(int argc, char** argv) {
  if (argc > 1) return usage();
  const bool effort = argc == 1 && std::string(argv[0]) == "--effort";
  if (argc == 1 && !effort) return usage();
  std::printf("%-8s %-10s %8s %8s %8s\n", "Design", "Size", "#Valves", "#CP", "#Obs");
  for (const auto& params : chip::table1Designs()) {
    const auto c = chip::generateChip(params);
    char size[24];
    std::snprintf(size, sizeof size, "%dx%d", c.routingGrid.width(),
                  c.routingGrid.height());
    std::printf("%-8s %-10s %8zu %8zu %8zu\n", c.name.c_str(), size, c.valves.size(),
                c.pins.size(), c.obstacles.size());
  }
  if (effort) {
    std::printf("\n");
    for (const auto& params : chip::table1Designs()) {
      const auto c = chip::generateChip(params);
      const auto result = routeChip(c, core::pacorDefaultConfig());
      std::printf("%s\n", core::describeEffort(result).c_str());
    }
  }
  return 0;
}

int cmdTable2() {
  core::printTable2Header(std::cout);
  bool allComplete = true;
  std::vector<std::array<core::PacorResult, 3>> rows;
  for (const auto& params : chip::table1Designs()) {
    const auto c = chip::generateChip(params);
    auto woSel = routeChip(c, core::withoutSelectionConfig());
    auto detourFirst = routeChip(c, core::detourFirstConfig());
    auto full = routeChip(c, core::pacorDefaultConfig());
    core::printTable2Row(std::cout, woSel, detourFirst, full);
    allComplete &= woSel.complete && detourFirst.complete && full.complete;
    rows.push_back({std::move(woSel), std::move(detourFirst), std::move(full)});
  }
  std::cout << "\nSearch effort:\n";
  core::printEffortHeader(std::cout);
  for (const auto& row : rows) core::printEffortRow(std::cout, row[0], row[1], row[2]);
  return allComplete ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate" || cmd == "gen") return cmdGenerate(argc - 2, argv + 2);
    if (cmd == "synth") return cmdSynth(argc - 2, argv + 2);
    if (cmd == "info") return cmdInfo(argc - 2, argv + 2);
    if (cmd == "route") return cmdRoute(argc - 2, argv + 2);
    if (cmd == "diff") return cmdDiff(argc - 2, argv + 2);
    if (cmd == "serve") return cmdServe(argc - 2, argv + 2);
    if (cmd == "check") return cmdCheck(argc - 2, argv + 2);
    if (cmd == "verify") return cmdVerify(argc - 2, argv + 2);
    if (cmd == "svg") return cmdSvg(argc - 2, argv + 2);
    if (cmd == "table1") return cmdTable1(argc - 2, argv + 2);
    if (cmd == "table2") return cmdTable2();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
