// pacor_fuzz -- randomized differential fuzz harness for the PACOR flow.
//
// Drives chip::generateChip(chip::randomParams(seed)) through seeded
// random designs (die size, valve/cluster mix, obstacle density, delta
// all vary), runs the full pipeline under serial and parallel configs and
// a rotating flow variant, and asserts four properties per design:
//
//   (a) the independent oracle (src/verify) accepts every produced
//       solution of a run that claims completion,
//   (b) serial and --jobs=N output are byte-identical (canonical
//       solution text),
//   (c) the oracle and the router-side DRC agree on clean/dirty -- a
//       disagreement is a bug in one of the two checkers,
//   (d) the incremental escape-flow session is invisible in the output:
//       a --no-incremental-escape run (flow network rebuilt from scratch
//       every rip-up round) is byte-identical to the warm-restart run,
//   (e) the long-lived serve loop is invisible too: routing the design
//       through one shared serve::Server (shared pool, reused workspaces
//       and obstacle templates across all previous seeds' requests) is
//       byte-identical to the independent one-shot run,
//   (f) a --fast-escape run (multi-augmenting escape-flow solver) that
//       claims completion is oracle-clean, and its first escape pass --
//       the only pass where both solvers see the identical flow network,
//       before committed paths diverge -- reaches the same lexicographic
//       (routed count, flow cost) optimum as the classic run.
//
// Any failure dumps a repro (<dump>/fuzz_<seed>.chip + .sol [+ .par.sol])
// with the seed in the name; checker disagreements are first minimized by
// greedily deleting clusters while the disagreement persists.
//
//   pacor_fuzz [--designs=N] [--seed=S] [--jobs=J] [--dump=DIR] [--verbose]
//              [--trace=FILE]
//
// --trace=FILE records the first design's serial+parallel runs at search
// granularity and writes one Chrome trace_event file, exercising the
// tracing subsystem under the same build (e.g. ASan in CI).
//
// Exit code 0 when every design passed, 1 otherwise, 2 on usage errors.

#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "chip/generator.hpp"
#include "chip/io.hpp"
#include "pacor/drc.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/solution_io.hpp"
#include "serve/serve.hpp"
#include "trace/trace.hpp"
#include "verify/oracle.hpp"

namespace {

using namespace pacor;

struct Options {
  std::uint32_t designs = 200;
  std::uint32_t seed = 1;
  int jobs = 4;
  std::string dumpDir = "fuzz-repros";
  std::string tracePath;
  bool verbose = false;
};

int usage() {
  std::cerr << "usage: pacor_fuzz [--designs=N] [--seed=S] [--jobs=J] "
               "[--dump=DIR] [--trace=FILE] [--verbose]\n";
  return 2;
}

bool parseOptions(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto intValue = [&](const std::string& prefix, auto& out) {
      out = static_cast<std::remove_reference_t<decltype(out)>>(
          std::stoll(arg.substr(prefix.size())));
      return true;
    };
    try {
      if (arg.rfind("--designs=", 0) == 0) intValue("--designs=", opt.designs);
      else if (arg.rfind("--seed=", 0) == 0) intValue("--seed=", opt.seed);
      else if (arg.rfind("--jobs=", 0) == 0) intValue("--jobs=", opt.jobs);
      else if (arg.rfind("--dump=", 0) == 0) opt.dumpDir = arg.substr(7);
      else if (arg.rfind("--trace=", 0) == 0) opt.tracePath = arg.substr(8);
      else if (arg == "--verbose") opt.verbose = true;
      else return false;
    } catch (const std::exception&) {
      return false;
    }
  }
  return opt.jobs >= 0;
}

/// The per-design pass/fail record the summary aggregates.
struct Tally {
  std::uint32_t designs = 0;
  std::uint32_t complete = 0;
  std::uint32_t failures = 0;
  std::uint64_t clusters = 0;
};

core::PacorConfig configForSeed(std::uint32_t seed) {
  switch (seed % 3) {
    case 1: return core::withoutSelectionConfig();
    case 2: return core::detourFirstConfig();
    default: return core::pacorDefaultConfig();
  }
}

void dumpRepro(const Options& opt, std::uint32_t seed, const chip::Chip& chip,
               const core::PacorResult& serial, const core::PacorResult* parallel) {
  std::filesystem::create_directories(opt.dumpDir);
  const std::string stem = opt.dumpDir + "/fuzz_" + std::to_string(seed);
  chip::writeChipFile(stem + ".chip", chip);
  core::writeSolutionFile(stem + ".sol", serial);
  if (parallel) core::writeSolutionFile(stem + ".par.sol", *parallel);
  std::cerr << "  repro dumped: " << stem << ".chip / .sol"
            << (parallel ? " / .par.sol" : "") << "  (seed " << seed
            << "; re-check with `pacor verify " << stem << ".chip " << stem
            << ".sol`)\n";
}

bool checkersDisagree(const chip::Chip& chip, const core::PacorResult& result) {
  return verify::verifySolution(chip, result).clean() !=
         core::checkSolution(chip, result).clean();
}

/// Greedy 1-cluster deletion while the oracle/DRC disagreement persists;
/// returns the smallest disagreeing solution found.
core::PacorResult minimizeDisagreement(const chip::Chip& chip,
                                       core::PacorResult result) {
  bool shrunk = true;
  while (shrunk && result.clusters.size() > 1) {
    shrunk = false;
    for (std::size_t i = 0; i < result.clusters.size(); ++i) {
      core::PacorResult trial = result;
      trial.clusters.erase(trial.clusters.begin() + static_cast<std::ptrdiff_t>(i));
      if (checkersDisagree(chip, trial)) {
        result = std::move(trial);
        shrunk = true;
        break;
      }
    }
  }
  return result;
}

bool runDesign(const Options& opt, serve::Server& server, std::uint32_t seed,
               Tally& tally) {
  const chip::GeneratorParams params = chip::randomParams(seed);
  const chip::Chip chip = chip::generateChip(params);

  core::PacorConfig serialCfg = configForSeed(seed);
  serialCfg.jobs = 1;
  core::PacorConfig parallelCfg = serialCfg;
  parallelCfg.jobs = opt.jobs;

  const core::PacorResult serial = core::routeChip(chip, serialCfg);
  const core::PacorResult parallel = core::routeChip(chip, parallelCfg);
  ++tally.designs;
  tally.complete += serial.complete ? 1 : 0;
  tally.clusters += serial.clusters.size();

  bool ok = true;

  // (b) byte-identical serial vs parallel canonical text.
  const std::string serialText = core::solutionToString(serial);
  if (const std::string parallelText = core::solutionToString(parallel);
      serialText != parallelText) {
    std::cerr << "FAIL seed " << seed << ": serial and --jobs=" << opt.jobs
              << " solutions differ (" << serialText.size() << " vs "
              << parallelText.size() << " bytes)\n";
    dumpRepro(opt, seed, chip, serial, &parallel);
    ok = false;
  }

  // (a) oracle-clean completed solutions, and the round-tripped text
  // re-verifies the same way (covers solution_io on every design).
  const verify::OracleReport oracle = verify::verifySolution(chip, serial);
  if (serial.complete && !oracle.clean()) {
    std::cerr << "FAIL seed " << seed << ": pipeline claims completion but the "
              << "oracle found violations:\n" << oracle.str();
    dumpRepro(opt, seed, chip, serial, nullptr);
    ok = false;
  }
  const core::PacorResult reparsed = core::solutionFromString(serialText);
  if (verify::verifySolution(chip, reparsed).clean() != oracle.clean()) {
    std::cerr << "FAIL seed " << seed
              << ": oracle verdict changed across a solution_io round trip\n";
    dumpRepro(opt, seed, chip, serial, nullptr);
    ok = false;
  }

  // (d) incremental-escape runs stay byte-identical to from-scratch runs.
  core::PacorConfig scratchCfg = serialCfg;
  scratchCfg.incrementalEscape = !serialCfg.incrementalEscape;
  const core::PacorResult scratch = core::routeChip(chip, scratchCfg);
  if (const std::string scratchText = core::solutionToString(scratch);
      scratchText != serialText) {
    std::cerr << "FAIL seed " << seed << ": incrementalEscape="
              << serialCfg.incrementalEscape << " and its inverse produce "
              << "different solutions (" << serialText.size() << " vs "
              << scratchText.size() << " bytes)\n";
    dumpRepro(opt, seed, chip, serial, &scratch);
    ok = false;
  }

  // (e) N requests through one long-lived server == N independent runs.
  // The server is shared across all seeds, so every request after the
  // first exercises reused worker threads and a warm request loop.
  serve::RequestOptions request;
  request.config = serialCfg;
  const serve::Response served =
      server.route("fuzz_" + std::to_string(seed), chip, request);
  if (!served.ok || served.solutionText != serialText) {
    std::cerr << "FAIL seed " << seed << ": serve::Server output differs from "
              << "the independent one-shot run ("
              << (served.ok ? "different bytes" : "error: " + served.error)
              << ")\n";
    dumpRepro(opt, seed, chip, serial, nullptr);
    ok = false;
  }

  // (f) fast-escape completions are oracle-clean and first-pass
  // cost-equal to the classic solver.
  core::PacorConfig fastCfg = serialCfg;
  fastCfg.fastEscape = true;
  const core::PacorResult fast = core::routeChip(chip, fastCfg);
  if (fast.complete && !verify::verifySolution(chip, fast).clean()) {
    std::cerr << "FAIL seed " << seed << ": --fast-escape run claims "
              << "completion but the oracle found violations:\n"
              << verify::verifySolution(chip, fast).str();
    dumpRepro(opt, seed, chip, fast, nullptr);
    ok = false;
  }
  if (fast.metrics.getInt("escape.flow.first_routed", -1) !=
          serial.metrics.getInt("escape.flow.first_routed", -1) ||
      fast.metrics.getInt("escape.flow.first_cost", -1) !=
          serial.metrics.getInt("escape.flow.first_cost", -1)) {
    std::cerr << "FAIL seed " << seed << ": --fast-escape first escape pass "
              << "optimum differs from the classic solver (routed "
              << fast.metrics.getInt("escape.flow.first_routed", -1) << " vs "
              << serial.metrics.getInt("escape.flow.first_routed", -1)
              << ", cost " << fast.metrics.getInt("escape.flow.first_cost", -1)
              << " vs " << serial.metrics.getInt("escape.flow.first_cost", -1)
              << ")\n";
    dumpRepro(opt, seed, chip, fast, nullptr);
    ok = false;
  }

  // (c) oracle / DRC agreement on clean-vs-dirty.
  if (checkersDisagree(chip, serial)) {
    const core::PacorResult minimized = minimizeDisagreement(chip, serial);
    std::cerr << "FAIL seed " << seed << ": oracle and DRC disagree (minimized to "
              << minimized.clusters.size() << " cluster(s))\n"
              << verify::verifySolution(chip, minimized).str()
              << core::checkSolution(chip, minimized).str();
    dumpRepro(opt, seed, chip, minimized, nullptr);
    ok = false;
  }

  if (opt.verbose)
    std::cout << "seed " << seed << ": " << chip.name << " "
              << chip.routingGrid.width() << "x" << chip.routingGrid.height()
              << ", " << chip.valves.size() << " valves, delta " << chip.delta
              << (serial.complete ? ", complete" : ", INCOMPLETE")
              << (ok ? "" : "  <-- FAILED") << '\n';
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parseOptions(argc, argv, opt)) return usage();

  Tally tally;
  serve::Server server(opt.jobs);  // shared across all seeds (property e)
  for (std::uint32_t i = 0; i < opt.designs; ++i) {
    const std::uint32_t seed = opt.seed + i;
    // Trace the first design end to end (serial + parallel runs) so the
    // tracing subsystem is exercised under the harness build's sanitizers.
    const bool traceThis = i == 0 && !opt.tracePath.empty();
    if (traceThis) trace::beginSession(trace::Level::kSearch);
    try {
      if (!runDesign(opt, server, seed, tally)) ++tally.failures;
    } catch (const std::exception& e) {
      // Generator/pipeline exceptions on a feasible random design are
      // harness bugs too -- surface them with the seed.
      std::cerr << "FAIL seed " << seed << ": exception: " << e.what() << '\n';
      ++tally.failures;
      ++tally.designs;
    }
    if (traceThis) {
      const auto events = trace::endSession();
      if (!trace::writeChromeTrace(opt.tracePath, events)) {
        std::cerr << "FAIL: cannot write trace file " << opt.tracePath << '\n';
        ++tally.failures;
      } else {
        std::cout << "trace: wrote " << opt.tracePath << " (" << events.size()
                  << " spans)\n";
      }
    }
  }

  std::cout << "pacor_fuzz: " << tally.designs << " designs (base seed " << opt.seed
            << ", jobs " << opt.jobs << "), " << tally.complete
            << " routed to completion, " << tally.clusters << " clusters total, "
            << tally.failures << " failure(s)\n";
  return tally.failures == 0 ? 0 : 1;
}
