// pacor_fuzz -- randomized differential fuzz harness for the PACOR flow.
//
// Drives chip::generateChip(chip::randomParams(seed)) through seeded
// random designs (die size, valve/cluster mix, obstacle density, delta
// all vary), runs the full pipeline under serial and parallel configs and
// a rotating flow variant, and asserts four properties per design:
//
//   (a) the independent oracle (src/verify) accepts every produced
//       solution of a run that claims completion,
//   (b) serial and --jobs=N output are byte-identical (canonical
//       solution text),
//   (c) the oracle and the router-side DRC agree on clean/dirty -- a
//       disagreement is a bug in one of the two checkers,
//   (d) the incremental escape-flow session is invisible in the output:
//       a --no-incremental-escape run (flow network rebuilt from scratch
//       every rip-up round) is byte-identical to the warm-restart run,
//   (e) the long-lived serve loop is invisible too: routing the design
//       through one shared serve::Server (shared pool, reused workspaces
//       and obstacle templates across all previous seeds' requests) is
//       byte-identical to the independent one-shot run,
//   (f) a --fast-escape run (multi-augmenting escape-flow solver) that
//       claims completion is oracle-clean, and its first escape pass --
//       the only pass where both solvers see the identical flow network,
//       before committed paths diverge -- reaches the same lexicographic
//       (routed count, flow cost) optimum as the classic run,
//   (g) ECO differential: a seeded random edit script (1-8 edits -- valve
//       moves/adds/removes, obstacle adds/removes, cluster flips) is
//       applied one delta at a time, chaining each rerouteChip() result
//       into the next step. Every step must be oracle-clean on the edited
//       chip; identity-mode answers must equal the previous solution,
//       full-mode answers must equal a from-scratch routeChip of the
//       edited chip, and every cluster an incremental answer carries must
//       be byte-equal to a cluster of the previous step's solution under
//       the delta's valve renumbering,
//   (h) FPVA valve arrays (every eighth seed) hold the same invariants,
//   (i) serve protocol round trip: random valid request lines re-parse to
//       the same canonical text (format(parse(x)) == x), and arbitrary
//       byte soup never crashes parseRequestLine / parseResponseLine --
//       the exact property the socket front end relies on.
//
// Any failure dumps a repro (<dump>/fuzz_<seed>.chip + .sol [+ .par.sol];
// eco failures dump <dump>/eco_<seed>.chip + .delta + .sol) with the seed
// in the name; checker disagreements are first minimized by greedily
// deleting clusters, eco failures by greedily deleting delta ops, while
// the failure persists.
//
//   pacor_fuzz [--designs=N] [--seed=S] [--jobs=J] [--dump=DIR] [--verbose]
//              [--trace=FILE]
//
// --trace=FILE records the first design's serial+parallel runs at search
// granularity and writes one Chrome trace_event file, exercising the
// tracing subsystem under the same build (e.g. ASan in CI).
//
// Exit code 0 when every design passed, 1 otherwise, 2 on usage errors.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "chip/delta.hpp"
#include "chip/generator.hpp"
#include "chip/io.hpp"
#include "pacor/drc.hpp"
#include "pacor/eco.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/solution_io.hpp"
#include "serve/serve.hpp"
#include "trace/trace.hpp"
#include "verify/oracle.hpp"

namespace {

using namespace pacor;

struct Options {
  std::uint32_t designs = 200;
  std::uint32_t seed = 1;
  int jobs = 4;
  std::string dumpDir = "fuzz-repros";
  std::string tracePath;
  bool verbose = false;
};

int usage() {
  std::cerr << "usage: pacor_fuzz [--designs=N] [--seed=S] [--jobs=J] "
               "[--dump=DIR] [--trace=FILE] [--verbose]\n";
  return 2;
}

bool parseOptions(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto intValue = [&](const std::string& prefix, auto& out) {
      out = static_cast<std::remove_reference_t<decltype(out)>>(
          std::stoll(arg.substr(prefix.size())));
      return true;
    };
    try {
      if (arg.rfind("--designs=", 0) == 0) intValue("--designs=", opt.designs);
      else if (arg.rfind("--seed=", 0) == 0) intValue("--seed=", opt.seed);
      else if (arg.rfind("--jobs=", 0) == 0) intValue("--jobs=", opt.jobs);
      else if (arg.rfind("--dump=", 0) == 0) opt.dumpDir = arg.substr(7);
      else if (arg.rfind("--trace=", 0) == 0) opt.tracePath = arg.substr(8);
      else if (arg == "--verbose") opt.verbose = true;
      else return false;
    } catch (const std::exception&) {
      return false;
    }
  }
  return opt.jobs >= 0;
}

/// The per-design pass/fail record the summary aggregates.
struct Tally {
  std::uint32_t designs = 0;
  std::uint32_t complete = 0;
  std::uint32_t failures = 0;
  std::uint64_t clusters = 0;
  // Property (g) eco-step mode counts -- the summary proves the sweep
  // exercised all three rerouteChip answers, not just identity.
  std::uint32_t ecoIdentity = 0;
  std::uint32_t ecoIncremental = 0;
  std::uint32_t ecoFull = 0;
  // Property (h): randomized FPVA valve arrays routed differentially.
  std::uint32_t fpva = 0;
  // Property (i): serve protocol lines round-tripped / junk lines survived.
  std::uint64_t protocolLines = 0;
};

/// Property (i) generator: a random valid Request. Tokens avoid
/// whitespace (the grammar's separator) and the verb keywords, which a
/// design name cannot be.
serve::Request randomRequest(std::mt19937& rng) {
  const auto token = [&rng](std::size_t minLen) {
    static const char kChars[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
        "._:/-";
    std::string out;
    const std::size_t len = minLen + rng() % 12;
    for (std::size_t i = 0; i < len; ++i)
      out += kChars[rng() % (sizeof kChars - 1)];
    if (out == "eco" || out == "gen") out += "_";
    return out;
  };
  serve::Request req;
  const std::uint32_t verb = rng() % 8;
  req.verb = verb == 0   ? serve::Verb::kGen
             : verb == 1 ? serve::Verb::kEco
                         : serve::Verb::kRoute;
  req.design = token(1);
  if (req.verb == serve::Verb::kGen) return req;
  if (req.verb == serve::Verb::kEco) req.deltaPath = token(1);
  if (rng() % 2) req.solutionPath = token(1);
  if (rng() % 2) req.metricsPath = token(1);
  if (rng() % 3 == 0) {
    req.tracePath = token(1);
    static const trace::Level kLevels[] = {
        trace::Level::kStage, trace::Level::kCluster, trace::Level::kSearch};
    req.traceLevel = kLevels[rng() % 3];
  }
  static const serve::Variant kVariants[] = {
      serve::Variant::kPacor, serve::Variant::kWosel,
      serve::Variant::kDetourFirst};
  req.variant = kVariants[rng() % 3];
  req.incrementalEscape = rng() % 2 == 0;
  req.fastEscape = rng() % 4 == 0;
  if (rng() % 3 == 0)
    req.deadlineMs = 1 + static_cast<std::int64_t>(
                             rng() % static_cast<std::uint64_t>(
                                         serve::kMaxDeadlineMs));
  return req;
}

core::PacorConfig configForSeed(std::uint32_t seed) {
  switch (seed % 3) {
    case 1: return core::withoutSelectionConfig();
    case 2: return core::detourFirstConfig();
    default: return core::pacorDefaultConfig();
  }
}

void dumpRepro(const Options& opt, std::uint32_t seed, const chip::Chip& chip,
               const core::PacorResult& serial, const core::PacorResult* parallel) {
  std::filesystem::create_directories(opt.dumpDir);
  const std::string stem = opt.dumpDir + "/fuzz_" + std::to_string(seed);
  chip::writeChipFile(stem + ".chip", chip);
  core::writeSolutionFile(stem + ".sol", serial);
  if (parallel) core::writeSolutionFile(stem + ".par.sol", *parallel);
  std::cerr << "  repro dumped: " << stem << ".chip / .sol"
            << (parallel ? " / .par.sol" : "") << "  (seed " << seed
            << "; re-check with `pacor verify " << stem << ".chip " << stem
            << ".sol`)\n";
}

bool checkersDisagree(const chip::Chip& chip, const core::PacorResult& result) {
  return verify::verifySolution(chip, result).clean() !=
         core::checkSolution(chip, result).clean();
}

/// Greedy 1-cluster deletion while the oracle/DRC disagreement persists;
/// returns the smallest disagreeing solution found.
core::PacorResult minimizeDisagreement(const chip::Chip& chip,
                                       core::PacorResult result) {
  bool shrunk = true;
  while (shrunk && result.clusters.size() > 1) {
    shrunk = false;
    for (std::size_t i = 0; i < result.clusters.size(); ++i) {
      core::PacorResult trial = result;
      trial.clusters.erase(trial.clusters.begin() + static_cast<std::ptrdiff_t>(i));
      if (checkersDisagree(chip, trial)) {
        result = std::move(trial);
        shrunk = true;
        break;
      }
    }
  }
  return result;
}

// --------------------------------------------------------------------------
// Property (g): edit-sequence differential ECO fuzzing.

geom::Point randomFreeCell(const chip::Chip& chip, std::mt19937& rng) {
  std::unordered_set<geom::Point> used(chip.obstacles.begin(), chip.obstacles.end());
  for (const chip::Valve& v : chip.valves) used.insert(v.pos);
  for (const chip::ControlPin& p : chip.pins) used.insert(p.pos);
  std::vector<geom::Point> free;
  for (std::int32_t y = 0; y < chip.routingGrid.height(); ++y)
    for (std::int32_t x = 0; x < chip.routingGrid.width(); ++x)
      if (!used.count({x, y})) free.push_back({x, y});
  // A generated chip always leaves free routing cells.
  return free[rng() % free.size()];
}

std::vector<chip::ValveId> unclusteredValves(const chip::Chip& chip) {
  std::vector<bool> clustered(chip.valves.size(), false);
  for (const chip::ValveCluster& c : chip.givenClusters)
    for (const chip::ValveId v : c.valves)
      clustered[static_cast<std::size_t>(v)] = true;
  std::vector<chip::ValveId> loose;
  for (std::size_t i = 0; i < clustered.size(); ++i)
    if (!clustered[i]) loose.push_back(static_cast<chip::ValveId>(i));
  return loose;
}

/// A structurally-valid 1..2-op edit script against `base`. Ops are drawn
/// against the evolving intermediate chip (DeltaOp ids refer to the state
/// at the moment the op applies), so the script is valid by construction.
chip::ChipDelta randomDelta(const chip::Chip& base, std::mt19937& rng) {
  chip::ChipDelta delta;
  chip::Chip cur = base;
  const int ops = 1 + static_cast<int>(rng() % 2);
  for (int i = 0; i < ops; ++i) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      chip::ChipDelta op;
      switch (rng() % 6) {
        case 0:  // block a free cell
          op.addObstacle(randomFreeCell(cur, rng));
          break;
        case 1:  // unblock an existing obstacle
          if (cur.obstacles.empty()) continue;
          op.removeObstacle(cur.obstacles[rng() % cur.obstacles.size()]);
          break;
        case 2:  // move a valve onto a free cell
          if (cur.valves.empty()) continue;
          op.moveValve(static_cast<chip::ValveId>(rng() % cur.valves.size()),
                       randomFreeCell(cur, rng));
          break;
        case 3:  // drop in a fresh unclustered valve
          op.addValve(randomFreeCell(cur, rng),
                      cur.valves.empty() ? "10" : cur.valves.front().sequence.str());
          break;
        case 4: {  // remove a valve no given cluster references
          const std::vector<chip::ValveId> loose = unclusteredValves(cur);
          if (loose.empty()) continue;
          op.removeValve(loose[rng() % loose.size()]);
          break;
        }
        default: {  // flip a cluster's length-matching constraint
          if (cur.givenClusters.empty()) continue;
          const auto idx = static_cast<std::int32_t>(rng() % cur.givenClusters.size());
          chip::ValveCluster c = cur.givenClusters[static_cast<std::size_t>(idx)];
          c.lengthMatched = !c.lengthMatched;
          op.setCluster(idx, c);
          break;
        }
      }
      cur = chip::apply(cur, op);
      delta.ops.push_back(op.ops.front());
      break;
    }
  }
  return delta;
}

/// Property (g) verdict for one edit step; empty == pass. Deltas that no
/// longer apply or yield an invalid chip (the minimizer shrinks into
/// those) vacuously pass. On pass, `editedOut`/`incOut` receive the edited
/// chip and the rerouteChip result so the caller can chain the next step.
std::string ecoStepFailure(const chip::Chip& cur, const core::PacorResult& prev,
                           const chip::ChipDelta& delta,
                           const core::PacorConfig& cfg,
                           chip::Chip* editedOut = nullptr,
                           core::PacorResult* incOut = nullptr,
                           core::EcoInfo* infoOut = nullptr) {
  chip::AppliedDelta applied;
  try {
    applied = chip::applyWithMap(cur, delta);
  } catch (const std::exception&) {
    return "";
  }
  if (applied.chip.validate()) return "";
  const chip::Chip& edited = applied.chip;
  if (editedOut) *editedOut = edited;

  core::EcoInfo info;
  core::PacorResult inc;
  try {
    inc = core::rerouteChip(cur, prev, delta, cfg, {}, &info);
  } catch (const std::exception& e) {
    return std::string("rerouteChip threw: ") + e.what();
  }
  if (incOut) *incOut = inc;
  if (infoOut) *infoOut = info;

  if (inc.complete) {
    const verify::OracleReport oracle = verify::verifySolution(edited, inc);
    if (!oracle.clean())
      return "eco result claims completion but the oracle found violations:\n" +
             oracle.str();
  }

  switch (info.mode) {
    case core::EcoInfo::Mode::kFull:
      if (core::solutionToString(inc) !=
          core::solutionToString(core::routeChip(edited, cfg)))
        return "full-mode eco differs from routeChip on the edited chip";
      break;
    case core::EcoInfo::Mode::kIdentity:
      if (core::solutionToString(inc) != core::solutionToString(prev))
        return "identity-mode eco does not return the previous solution";
      break;
    case core::EcoInfo::Mode::kIncremental: {
      if (!inc.complete)
        return "incremental-mode eco returned an incomplete solution";
      // Every carried cluster must be byte-equal to a previous cluster
      // under the delta's valve renumbering.
      std::map<std::vector<chip::ValveId>, const core::RoutedCluster*> byValves;
      for (const core::RoutedCluster& rc : prev.clusters) {
        std::vector<chip::ValveId> key = rc.valves;
        std::sort(key.begin(), key.end());
        byValves[std::move(key)] = &rc;
      }
      std::vector<chip::ValveId> invMap(edited.valves.size(), -1);
      for (std::size_t old = 0; old < applied.valveMap.size(); ++old)
        if (applied.valveMap[old] >= 0)
          invMap[static_cast<std::size_t>(applied.valveMap[old])] =
              static_cast<chip::ValveId>(old);
      int carried = 0;
      for (const core::RoutedCluster& rc : inc.clusters) {
        if (!rc.ecoCarried) continue;
        ++carried;
        std::vector<chip::ValveId> key;
        for (const chip::ValveId v : rc.valves) {
          const chip::ValveId old = invMap.at(static_cast<std::size_t>(v));
          if (old < 0) return "carried cluster contains a valve new in this delta";
          key.push_back(old);
        }
        std::sort(key.begin(), key.end());
        const auto it = byValves.find(key);
        if (it == byValves.end())
          return "carried cluster has no valve-set match in the previous solution";
        const core::RoutedCluster& was = *it->second;
        if (rc.pin != was.pin || !(rc.tap == was.tap) ||
            rc.treePaths != was.treePaths || !(rc.escapePath == was.escapePath) ||
            rc.valveLengths != was.valveLengths ||
            rc.lengthMatched != was.lengthMatched ||
            rc.lengthMatchRequested != was.lengthMatchRequested)
          return "carried cluster geometry differs from the previous solution";
      }
      if (carried != info.frozenClusters) {
        std::ostringstream why;
        why << "frozen-cluster count mismatch: " << carried
            << " carried clusters vs info.frozenClusters=" << info.frozenClusters;
        return why.str();
      }
      break;
    }
  }
  return "";
}

/// Greedy 1-op deletion while the eco step failure persists.
chip::ChipDelta minimizeEcoDelta(const chip::Chip& cur, const core::PacorResult& prev,
                                 chip::ChipDelta delta, const core::PacorConfig& cfg) {
  bool shrunk = true;
  while (shrunk && delta.ops.size() > 1) {
    shrunk = false;
    for (std::size_t i = 0; i < delta.ops.size(); ++i) {
      chip::ChipDelta trial = delta;
      trial.ops.erase(trial.ops.begin() + static_cast<std::ptrdiff_t>(i));
      if (!ecoStepFailure(cur, prev, trial, cfg).empty()) {
        delta = std::move(trial);
        shrunk = true;
        break;
      }
    }
  }
  return delta;
}

void dumpEcoRepro(const Options& opt, std::uint32_t seed, const chip::Chip& cur,
                  const core::PacorResult& prev, const chip::ChipDelta& delta) {
  std::filesystem::create_directories(opt.dumpDir);
  const std::string stem = opt.dumpDir + "/eco_" + std::to_string(seed);
  chip::writeChipFile(stem + ".chip", cur);
  chip::writeDeltaFile(stem + ".delta", delta);
  core::writeSolutionFile(stem + ".sol", prev);
  std::cerr << "  repro dumped: " << stem << ".chip / .delta / .sol  (seed "
            << seed << "; base chip + previous solution + edit script)\n";
}

bool runDesign(const Options& opt, serve::Server& server, std::uint32_t seed,
               Tally& tally) {
  const chip::GeneratorParams params = chip::randomParams(seed);
  const chip::Chip chip = chip::generateChip(params);

  core::PacorConfig serialCfg = configForSeed(seed);
  serialCfg.jobs = 1;
  core::PacorConfig parallelCfg = serialCfg;
  parallelCfg.jobs = opt.jobs;

  const core::PacorResult serial = core::routeChip(chip, serialCfg);
  const core::PacorResult parallel = core::routeChip(chip, parallelCfg);
  ++tally.designs;
  tally.complete += serial.complete ? 1 : 0;
  tally.clusters += serial.clusters.size();

  bool ok = true;

  // (b) byte-identical serial vs parallel canonical text.
  const std::string serialText = core::solutionToString(serial);
  if (const std::string parallelText = core::solutionToString(parallel);
      serialText != parallelText) {
    std::cerr << "FAIL seed " << seed << ": serial and --jobs=" << opt.jobs
              << " solutions differ (" << serialText.size() << " vs "
              << parallelText.size() << " bytes)\n";
    dumpRepro(opt, seed, chip, serial, &parallel);
    ok = false;
  }

  // (a) oracle-clean completed solutions, and the round-tripped text
  // re-verifies the same way (covers solution_io on every design).
  const verify::OracleReport oracle = verify::verifySolution(chip, serial);
  if (serial.complete && !oracle.clean()) {
    std::cerr << "FAIL seed " << seed << ": pipeline claims completion but the "
              << "oracle found violations:\n" << oracle.str();
    dumpRepro(opt, seed, chip, serial, nullptr);
    ok = false;
  }
  const core::PacorResult reparsed = core::solutionFromString(serialText);
  if (verify::verifySolution(chip, reparsed).clean() != oracle.clean()) {
    std::cerr << "FAIL seed " << seed
              << ": oracle verdict changed across a solution_io round trip\n";
    dumpRepro(opt, seed, chip, serial, nullptr);
    ok = false;
  }

  // (d) incremental-escape runs stay byte-identical to from-scratch runs.
  core::PacorConfig scratchCfg = serialCfg;
  scratchCfg.incrementalEscape = !serialCfg.incrementalEscape;
  const core::PacorResult scratch = core::routeChip(chip, scratchCfg);
  if (const std::string scratchText = core::solutionToString(scratch);
      scratchText != serialText) {
    std::cerr << "FAIL seed " << seed << ": incrementalEscape="
              << serialCfg.incrementalEscape << " and its inverse produce "
              << "different solutions (" << serialText.size() << " vs "
              << scratchText.size() << " bytes)\n";
    dumpRepro(opt, seed, chip, serial, &scratch);
    ok = false;
  }

  // (e) N requests through one long-lived server == N independent runs.
  // The server is shared across all seeds, so every request after the
  // first exercises reused worker threads and a warm request loop.
  serve::RequestOptions request;
  request.config = serialCfg;
  const serve::Response served =
      server.route("fuzz_" + std::to_string(seed), chip, request);
  if (!served.ok || served.solutionText != serialText) {
    std::cerr << "FAIL seed " << seed << ": serve::Server output differs from "
              << "the independent one-shot run ("
              << (served.ok ? "different bytes" : "error: " + served.error)
              << ")\n";
    dumpRepro(opt, seed, chip, serial, nullptr);
    ok = false;
  }

  // (f) fast-escape completions are oracle-clean and first-pass
  // cost-equal to the classic solver.
  core::PacorConfig fastCfg = serialCfg;
  fastCfg.fastEscape = true;
  const core::PacorResult fast = core::routeChip(chip, fastCfg);
  if (fast.complete && !verify::verifySolution(chip, fast).clean()) {
    std::cerr << "FAIL seed " << seed << ": --fast-escape run claims "
              << "completion but the oracle found violations:\n"
              << verify::verifySolution(chip, fast).str();
    dumpRepro(opt, seed, chip, fast, nullptr);
    ok = false;
  }
  if (fast.metrics.getInt("escape.flow.first_routed", -1) !=
          serial.metrics.getInt("escape.flow.first_routed", -1) ||
      fast.metrics.getInt("escape.flow.first_cost", -1) !=
          serial.metrics.getInt("escape.flow.first_cost", -1)) {
    std::cerr << "FAIL seed " << seed << ": --fast-escape first escape pass "
              << "optimum differs from the classic solver (routed "
              << fast.metrics.getInt("escape.flow.first_routed", -1) << " vs "
              << serial.metrics.getInt("escape.flow.first_routed", -1)
              << ", cost " << fast.metrics.getInt("escape.flow.first_cost", -1)
              << " vs " << serial.metrics.getInt("escape.flow.first_cost", -1)
              << ")\n";
    dumpRepro(opt, seed, chip, fast, nullptr);
    ok = false;
  }

  // (c) oracle / DRC agreement on clean-vs-dirty.
  if (checkersDisagree(chip, serial)) {
    const core::PacorResult minimized = minimizeDisagreement(chip, serial);
    std::cerr << "FAIL seed " << seed << ": oracle and DRC disagree (minimized to "
              << minimized.clusters.size() << " cluster(s))\n"
              << verify::verifySolution(chip, minimized).str()
              << core::checkSolution(chip, minimized).str();
    dumpRepro(opt, seed, chip, minimized, nullptr);
    ok = false;
  }

  // (g) edit-sequence differential ECO: a seeded 1-8 edit script applied
  // one delta at a time, each rerouteChip result chained into the next
  // step as the previous solution.
  {
    std::mt19937 rng(seed ^ 0x9e3779b9u);
    chip::Chip cur = chip;
    core::PacorResult prev = serial;
    const int steps = 1 + static_cast<int>(rng() % 4);
    for (int step = 0; ok && step < steps; ++step) {
      const chip::ChipDelta delta = randomDelta(cur, rng);
      chip::Chip edited;
      core::PacorResult inc;
      core::EcoInfo info;
      const std::string fail =
          ecoStepFailure(cur, prev, delta, serialCfg, &edited, &inc, &info);
      if (!fail.empty()) {
        const chip::ChipDelta minimized = minimizeEcoDelta(cur, prev, delta, serialCfg);
        std::cerr << "FAIL seed " << seed << " (eco step " << step << ", "
                  << minimized.ops.size() << "/" << delta.ops.size()
                  << " op(s) after minimization): " << fail << '\n';
        dumpEcoRepro(opt, seed, cur, prev, minimized);
        ok = false;
        break;
      }
      switch (info.mode) {
        case core::EcoInfo::Mode::kIdentity: ++tally.ecoIdentity; break;
        case core::EcoInfo::Mode::kIncremental: ++tally.ecoIncremental; break;
        case core::EcoInfo::Mode::kFull: ++tally.ecoFull; break;
      }
      cur = std::move(edited);
      prev = std::move(inc);
    }
  }

  // (h) FPVA valve arrays: every eighth seed also generates a randomized
  // N x M array chip (regular lattice, block clusters, boundary pin ring)
  // and holds it to the core invariants -- oracle-clean when complete and
  // byte-identical serial vs parallel. Keeps the generator's parameter
  // space (ragged blocks, obstacle sprinkling, dense lm mixes) under the
  // same differential harness as the Table-1-style instances.
  if (seed % 8 == 0) {
    const chip::Chip array = chip::generateFpvaChip(chip::randomFpvaParams(seed));
    const core::PacorResult arraySerial = core::routeChip(array, serialCfg);
    const core::PacorResult arrayParallel = core::routeChip(array, parallelCfg);
    ++tally.fpva;
    if (core::solutionToString(arraySerial) !=
        core::solutionToString(arrayParallel)) {
      std::cerr << "FAIL seed " << seed << ": FPVA " << array.name
                << " serial and --jobs=" << opt.jobs << " solutions differ\n";
      dumpRepro(opt, seed, array, arraySerial, &arrayParallel);
      ok = false;
    }
    if (const verify::OracleReport arrayOracle =
            verify::verifySolution(array, arraySerial);
        arraySerial.complete && !arrayOracle.clean()) {
      std::cerr << "FAIL seed " << seed << ": FPVA " << array.name
                << " claims completion but the oracle found violations:\n"
                << arrayOracle.str();
      dumpRepro(opt, seed, array, arraySerial, nullptr);
      ok = false;
    }
  }

  // (i) protocol round trip + junk-tolerance. Round trip: a random valid
  // request's canonical text re-parses and re-formats to itself. Junk: any
  // byte soup (including frames a confused client might send) must come
  // back as a parse error or a parse, never a crash or a throw -- an
  // exception here propagates to the seed-level catch and fails the seed.
  {
    std::mt19937 rng(seed * 2654435761u + 17u);
    for (int i = 0; i < 32; ++i) {
      const serve::Request req = randomRequest(rng);
      const std::string canonical = serve::formatRequestLine(req);
      serve::ParseError perr;
      const std::optional<serve::Request> reparsed =
          serve::parseRequestLine(canonical, &perr);
      if (!reparsed ||
          serve::formatRequestLine(*reparsed) != canonical) {
        std::cerr << "FAIL seed " << seed << ": protocol round trip broke on '"
                  << canonical << "' ("
                  << (reparsed ? "'" + serve::formatRequestLine(*reparsed) + "'"
                               : "parse error: " + perr.render())
                  << ")\n";
        ok = false;
        break;
      }
      ++tally.protocolLines;
    }
    for (int i = 0; i < 32; ++i) {
      std::string junk;
      const std::size_t len = rng() % 64;
      for (std::size_t j = 0; j < len; ++j)
        junk += static_cast<char>(rng() % 256);
      serve::parseRequestLine(junk);
      serve::parseResponseLine(junk);
      ++tally.protocolLines;
    }
    // Junk deadline_ms values: every malformed shape (empty, signed,
    // non-numeric, zero, overflow past kMaxDeadlineMs, embedded junk) must
    // come back as a structured error on field "deadline_ms" -- never a
    // parse that silently clamps, and never a throw.
    static const char* kJunkDeadlines[] = {
        "deadline_ms=",          "deadline_ms=-5",
        "deadline_ms=+5",        "deadline_ms=abc",
        "deadline_ms=0",         "deadline_ms=86400001",
        "deadline_ms=99999999999999999999999999", "deadline_ms=12x",
        "deadline_ms=0x10",      "deadline_ms= 7"};
    for (const char* junkOpt : kJunkDeadlines) {
      serve::ParseError perr;
      if (serve::parseRequestLine(std::string("D1 ") + junkOpt, &perr) ||
          perr.field != "deadline_ms") {
        std::cerr << "FAIL seed " << seed << ": junk '" << junkOpt
                  << "' was not a structured deadline_ms error\n";
        ok = false;
        break;
      }
      ++tally.protocolLines;
    }
  }

  if (opt.verbose)
    std::cout << "seed " << seed << ": " << chip.name << " "
              << chip.routingGrid.width() << "x" << chip.routingGrid.height()
              << ", " << chip.valves.size() << " valves, delta " << chip.delta
              << (serial.complete ? ", complete" : ", INCOMPLETE")
              << (ok ? "" : "  <-- FAILED") << '\n';
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parseOptions(argc, argv, opt)) return usage();

  Tally tally;
  serve::Server server(opt.jobs);  // shared across all seeds (property e)
  for (std::uint32_t i = 0; i < opt.designs; ++i) {
    const std::uint32_t seed = opt.seed + i;
    // Trace the first design end to end (serial + parallel runs) so the
    // tracing subsystem is exercised under the harness build's sanitizers.
    const bool traceThis = i == 0 && !opt.tracePath.empty();
    if (traceThis) trace::beginSession(trace::Level::kSearch);
    try {
      if (!runDesign(opt, server, seed, tally)) ++tally.failures;
    } catch (const std::exception& e) {
      // Generator/pipeline exceptions on a feasible random design are
      // harness bugs too -- surface them with the seed.
      std::cerr << "FAIL seed " << seed << ": exception: " << e.what() << '\n';
      ++tally.failures;
      ++tally.designs;
    }
    if (traceThis) {
      const auto events = trace::endSession();
      if (!trace::writeChromeTrace(opt.tracePath, events)) {
        std::cerr << "FAIL: cannot write trace file " << opt.tracePath << '\n';
        ++tally.failures;
      } else {
        std::cout << "trace: wrote " << opt.tracePath << " (" << events.size()
                  << " spans)\n";
      }
    }
  }

  std::cout << "pacor_fuzz: " << tally.designs << " designs (base seed " << opt.seed
            << ", jobs " << opt.jobs << "), " << tally.complete
            << " routed to completion, " << tally.clusters << " clusters total, "
            << "eco steps " << tally.ecoIdentity << " identity / "
            << tally.ecoIncremental << " incremental / " << tally.ecoFull
            << " full, " << tally.fpva << " fpva arrays, "
            << tally.protocolLines << " protocol lines, " << tally.failures
            << " failure(s)\n";
  return tally.failures == 0 ? 0 : 1;
}
