// Full front-to-back demo: start from what a biochip designer actually
// has -- a flow layer (channels + components) and a scheduled bioassay --
// synthesize the control-layer routing instance (activation sequences via
// control synthesis, obstacles from the flow layer), and run PACOR on it.
//
// Layout (20x26 die):
//
//   reservoir A     reservoir B
//        |    \      /   |
//        |     mixer      |          flow channels run vertically,
//        |    (coil)      |          gate valves sit on the channels,
//        |      |         |          the mixer's two gates must act
//        +---> out <------+          simultaneously (length-matched).

#include <iostream>

#include "chip/chip.hpp"
#include "chip/flow_layer.hpp"
#include "chip/schedule.hpp"
#include "pacor/drc.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/report.hpp"
#include "viz/svg.hpp"

int main() {
  using namespace pacor;
  using geom::Point;

  const grid::Grid die(26, 20);

  // --- Flow layer ---------------------------------------------------------
  chip::FlowLayer flow;
  // Two inlet channels feeding a central mixer, one outlet channel.
  flow.channels.push_back({{{5, 17}, {5, 10}, {10, 10}}});    // inlet A
  flow.channels.push_back({{{21, 17}, {21, 10}, {16, 10}}});  // inlet B
  flow.channels.push_back({{{13, 8}, {13, 3}}});              // outlet
  flow.components.push_back({"mixer", {{10, 9}, {16, 11}}});  // mixing coil
  flow.components.push_back({"reservoirA", {{3, 17}, {7, 18}}});
  flow.components.push_back({"reservoirB", {{19, 17}, {23, 18}}});

  // --- Valves: two mixer gates (synchronized) + two inlet gates ------------
  //    v0 gates inlet A into the mixer, v1 gates inlet B (both sitting on
  //    the horizontal channel runs, clear of the mixer footprint): they
  //    define the mixing volume and must close at exactly the same instant.
  const std::vector<Point> valveSites{{8, 10}, {18, 10}, {5, 14}, {21, 14}};

  // --- Bioassay schedule ----------------------------------------------------
  chip::AssaySchedule assay;
  assay.horizon = 8;
  assay.operations = {
      {"load", 0, 3, /*open*/ {2, 3}, /*closed*/ {0, 1}},   // fill inlets
      {"meter", 3, 5, /*open*/ {0, 1}, /*closed*/ {2, 3}},  // gate the plug
      {"mix", 5, 8, /*open*/ {}, /*closed*/ {0, 1}},        // seal the coil
  };

  std::string conflict;
  const auto sequences = chip::synthesizeSequences(assay, valveSites.size(), &conflict);
  if (!sequences) {
    std::cerr << "schedule conflict: " << conflict << '\n';
    return 2;
  }
  std::cout << "control synthesis produced activation sequences:\n";
  for (std::size_t v = 0; v < sequences->size(); ++v)
    std::cout << "  valve " << v << ": " << (*sequences)[v].str() << '\n';

  // --- Assemble the routing instance ---------------------------------------
  chip::Chip biochip;
  biochip.name = "assay-demo";
  biochip.routingGrid = die;
  biochip.delta = 1;
  for (std::size_t v = 0; v < valveSites.size(); ++v)
    biochip.valves.push_back(
        {static_cast<chip::ValveId>(v), valveSites[v], (*sequences)[v]});
  biochip.obstacles = chip::controlObstacles(flow, die, valveSites);
  // Candidate pins on all four edges, as a fabricated chip would have.
  int pinId = 0;
  for (int i = 0; i < 8; ++i)
    biochip.pins.push_back({pinId++, Point{2 + 3 * i, 0}});
  for (int i = 0; i < 8; ++i)
    biochip.pins.push_back({pinId++, Point{1 + 3 * i, 19}});
  for (int i = 0; i < 4; ++i) {
    biochip.pins.push_back({pinId++, Point{0, 3 + 4 * i}});
    biochip.pins.push_back({pinId++, Point{25, 3 + 4 * i}});
  }
  // The mixer gates are compatible (both sequences XX011 11) and must be
  // length-matched; the inlet gates are compatible with each other too.
  biochip.givenClusters = {{{0, 1}, /*lengthMatched=*/true}};

  if (const auto err = biochip.validate()) {
    std::cerr << "instance invalid: " << *err << '\n';
    return 2;
  }
  std::cout << "\nflow layer induces " << biochip.obstacles.size()
            << " blocked control cells\n\n";

  // --- Route ---------------------------------------------------------------
  const auto result = core::routeChip(biochip);
  std::cout << core::describeResult(result);
  const auto drc = core::checkSolution(biochip, result);
  std::cout << drc.str();

  for (const auto& c : result.clusters) {
    if (!c.lengthMatchRequested) continue;
    std::cout << "mixer gates -> pin " << c.pin << ", lengths";
    for (const auto l : c.valveLengths) std::cout << ' ' << l;
    std::cout << (c.lengthMatched ? "  (synchronized)" : "  (NOT matched)") << '\n';
  }

  // Two-layer rendering: flow layer underneath the routed control layer.
  std::vector<viz::DrawnNet> nets;
  for (std::size_t i = 0; i < result.clusters.size(); ++i) {
    viz::DrawnNet net;
    net.colorIndex = static_cast<int>(i);
    net.label = "control net " + std::to_string(i);
    net.paths = result.clusters[i].treePaths;
    net.paths.push_back(result.clusters[i].escapePath);
    nets.push_back(std::move(net));
  }
  viz::writeSvgFileWithFlow("assay_demo.svg", biochip, flow, nets, 14);
  std::cout << "wrote assay_demo.svg (flow + control layers)\n";
  return result.complete && drc.clean() ? 0 : 1;
}
