// Full-chip routing demo: generates a Table 1 design (default S5, or a
// name given on the command line), routes it with all three flow
// variants, prints the Table 2-style comparison, and emits an SVG of the
// PACOR result for visual inspection.

#include <cstring>
#include <fstream>
#include <iostream>

#include "chip/generator.hpp"
#include "chip/io.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/report.hpp"
#include "viz/svg.hpp"

int main(int argc, char** argv) {
  using namespace pacor;

  std::string which = argc > 1 ? argv[1] : "S5";
  chip::Chip theChip;
  bool found = false;
  for (const auto& params : chip::table1Designs()) {
    if (params.name == which) {
      theChip = chip::generateChip(params);
      found = true;
      break;
    }
  }
  if (!found) {
    std::cerr << "unknown design '" << which
              << "' (expected Chip1, Chip2, or S1..S5)\n";
    return 2;
  }

  std::cout << "routing " << theChip.name << " (" << theChip.routingGrid.width() << "x"
            << theChip.routingGrid.height() << ", " << theChip.valves.size()
            << " valves, " << theChip.pins.size() << " candidate pins)\n\n";

  const auto woSel = routeChip(theChip, core::withoutSelectionConfig());
  const auto detourFirst = routeChip(theChip, core::detourFirstConfig());
  const auto full = routeChip(theChip, core::pacorDefaultConfig());

  core::printTable2Header(std::cout);
  core::printTable2Row(std::cout, woSel, detourFirst, full);

  // Persist the instance and the routed picture next to the binary.
  chip::writeChipFile(theChip.name + ".chip", theChip);
  std::vector<viz::DrawnNet> nets;
  for (std::size_t i = 0; i < full.clusters.size(); ++i) {
    viz::DrawnNet net;
    net.colorIndex = static_cast<int>(i);
    net.label = "cluster " + std::to_string(i);
    net.paths = full.clusters[i].treePaths;
    net.paths.push_back(full.clusters[i].escapePath);
    nets.push_back(std::move(net));
  }
  const std::string svgPath = theChip.name + "_routed.svg";
  viz::writeSvgFile(svgPath, theChip, nets, 5);
  std::cout << "\nwrote " << theChip.name << ".chip and " << svgPath << '\n';
  return full.complete ? 0 : 1;
}
