// Pressure-propagation demo: why length matching matters physically.
// Routes the same two-valve synchronized cluster twice -- once with the
// detour stage enabled (matched) and once disabled -- and simulates the
// RC pressure transient to show the actuation-time skew difference.

#include <iostream>

#include "chip/chip.hpp"
#include "pacor/pipeline.hpp"
#include "sim/pressure.hpp"

namespace {

pacor::chip::Chip makeChip() {
  using pacor::geom::Point;
  pacor::chip::Chip c;
  c.name = "pressure-demo";
  c.routingGrid = pacor::grid::Grid(26, 26);
  c.delta = 1;
  // Deliberately asymmetric: valve 1 sits much closer to the likely pin.
  c.valves = {{0, Point{4, 13}, pacor::chip::ActivationSequence("0101")},
              {1, Point{20, 13}, pacor::chip::ActivationSequence("01X1")}};
  c.pins = {{0, Point{25, 13}}, {1, Point{0, 13}}, {2, Point{13, 0}}};
  c.givenClusters = {{{0, 1}, true}};
  return c;
}

double clusterSkew(const pacor::chip::Chip& chip,
                   const pacor::core::RoutedCluster& cluster) {
  std::vector<pacor::route::Path> paths = cluster.treePaths;
  paths.push_back(cluster.escapePath);
  std::vector<pacor::geom::Point> valves;
  for (const auto v : cluster.valves) valves.push_back(chip.valve(v).pos);
  const auto tree =
      pacor::sim::ChannelTree::build(chip.pin(cluster.pin).pos, paths, valves);
  if (!tree) return -1.0;
  const auto times = tree->actuationTimes(valves, 0.02, 50000.0);
  double lo = 1e18, hi = -1e18;
  for (const double t : times) {
    if (t < 0) return -1.0;
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  return hi - lo;
}

}  // namespace

int main() {
  const auto chip = makeChip();

  // Matched: the full flow honors the cluster's constraint. Unmatched: the
  // same pair routed as an ordinary (plain) cluster -- the escape can then
  // attach anywhere on the tree and the two arms end up unequal.
  auto plainChip = chip;
  plainChip.givenClusters[0].lengthMatched = false;

  const auto matched = pacor::core::routeChip(chip);
  const auto raw = pacor::core::routeChip(plainChip);

  const auto& mc = matched.clusters.front();
  const auto& rc = raw.clusters.front();

  std::cout << "with detouring:    lengths";
  for (const auto l : mc.valveLengths) std::cout << ' ' << l;
  std::cout << " -> actuation skew " << clusterSkew(chip, mc) << " a.u.\n";

  std::cout << "without detouring: lengths";
  for (const auto l : rc.valveLengths) std::cout << ' ' << l;
  std::cout << " -> actuation skew " << clusterSkew(chip, rc) << " a.u.\n";

  std::cout << "\nmatched channels reach the valves simultaneously; unmatched "
               "channels leave the farther valve switching late.\n";
  return matched.complete && raw.complete ? 0 : 1;
}
