// Quickstart: build a small chip by hand, run the full PACOR flow, and
// inspect the routing result. This is the 60-second tour of the public
// API: chip::Chip -> core::routeChip -> core::PacorResult.

#include <iostream>

#include "chip/chip.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/report.hpp"

int main() {
  using namespace pacor;

  // A 24x24 control layer with four valves: one synchronized pair (a
  // mixer's gate valves -- they must switch simultaneously, so their
  // channels to the shared pin must have matching length) and two
  // independent valves.
  chip::Chip myChip;
  myChip.name = "quickstart";
  myChip.routingGrid = grid::Grid(24, 24);
  myChip.delta = 1;  // allowed channel-length difference, in grid units
  myChip.valves = {
      {0, {6, 10}, chip::ActivationSequence("0101")},
      {1, {16, 10}, chip::ActivationSequence("01X1")},
      {2, {8, 18}, chip::ActivationSequence("1100")},
      {3, {15, 17}, chip::ActivationSequence("0011")},
  };
  // Candidate control pins on the chip boundary (pressure-source ports).
  myChip.pins = {{0, {0, 5}}, {1, {23, 12}}, {2, {10, 0}}, {3, {12, 23}}, {4, {0, 16}}};
  // Valves 0 and 1 must actuate together: one cluster, length-matched.
  myChip.givenClusters = {{{0, 1}, /*lengthMatched=*/true}};

  const core::PacorResult result = core::routeChip(myChip);

  std::cout << core::describeResult(result);
  std::cout << "\nmatched " << result.matchedClusterCount << " of "
            << result.multiValveClusterCount << " constrained cluster(s), total channel length "
            << result.totalChannelLength << " grid units\n";

  for (const auto& cluster : result.clusters) {
    if (!cluster.lengthMatchRequested) continue;
    std::cout << "synchronized pair -> pin " << cluster.pin << ", lengths";
    for (const auto l : cluster.valveLengths) std::cout << ' ' << l;
    std::cout << " (spread " << cluster.lengthSpread() << " <= delta " << myChip.delta
              << ")\n";
  }
  return result.complete ? 0 : 1;
}
