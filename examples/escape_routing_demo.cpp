// Escape-routing demo: exercises the min-cost-flow escape formulation in
// isolation -- a row of already-routed cluster taps competing for boundary
// control pins through a field of obstacles. Shows that the flow solver
// routes the maximum number of node-disjoint paths with minimum total
// length (the paper's Sec. 5 objective) where sequential routing would
// block itself.

#include <iostream>

#include "chip/chip.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/report.hpp"
#include "viz/svg.hpp"

int main() {
  using namespace pacor;
  using geom::Point;

  // Eight singleton valves deep inside a 30x20 chip; pins concentrated on
  // one edge so the escape paths must fan out without crossing.
  chip::Chip demo;
  demo.name = "escape-demo";
  demo.routingGrid = grid::Grid(30, 20);
  demo.delta = 1;
  for (int i = 0; i < 8; ++i) {
    const std::string seq = std::string(1, '0' + (i & 1)) +
                            std::string(1, '0' + ((i >> 1) & 1)) +
                            std::string(1, '0' + ((i >> 2) & 1)) + "1";
    demo.valves.push_back(
        {i, Point{6 + 2 * i, 10}, chip::ActivationSequence(seq)});
  }
  for (int i = 0; i < 10; ++i)
    demo.pins.push_back({i, Point{4 + 2 * i, 0}});
  // An obstacle shelf between the valves and the pins.
  for (std::int32_t x = 8; x <= 20; ++x)
    if (x != 14) demo.obstacles.push_back({x, 5});

  if (const auto err = demo.validate()) {
    std::cerr << "bad demo chip: " << *err << '\n';
    return 2;
  }

  const auto result = core::routeChip(demo);
  std::cout << core::describeResult(result);

  std::int64_t total = 0;
  for (const auto& c : result.clusters) {
    std::cout << "valve " << c.valves.front() << " -> pin " << c.pin << " (length "
              << c.totalLength << ")\n";
    total += c.totalLength;
  }
  std::cout << "total escape length: " << total << '\n';

  std::vector<viz::DrawnNet> nets;
  for (std::size_t i = 0; i < result.clusters.size(); ++i) {
    viz::DrawnNet net;
    net.colorIndex = static_cast<int>(i);
    net.paths = result.clusters[i].treePaths;
    net.paths.push_back(result.clusters[i].escapePath);
    nets.push_back(std::move(net));
  }
  viz::writeSvgFile("escape_demo.svg", demo, nets, 12);
  std::cout << "wrote escape_demo.svg\n";
  return result.complete ? 0 : 1;
}
