// Length-matching deep dive: builds a single 4-valve synchronized cluster,
// shows the DME candidate Steiner trees (the paper's Fig. 3 machinery),
// routes the selected tree, and demonstrates the bounded-length detour
// equalizing the channel lengths step by step.

#include <iostream>

#include "dme/candidate_tree.hpp"
#include "grid/obstacle_map.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/report.hpp"

int main() {
  using namespace pacor;
  using geom::Point;

  // Stage A: inspect DME candidates directly.
  grid::ObstacleMap obs{grid::Grid(28, 28)};
  const std::vector<Point> sinks{{5, 5}, {21, 7}, {7, 21}, {22, 22}};
  const auto candidates = dme::buildCandidateTrees(obs, 0, sinks, {.count = 4});
  std::cout << "DME produced " << candidates.size() << " candidate Steiner trees\n";
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    const auto& c = candidates[k];
    const Point root = c.embed[static_cast<std::size_t>(c.topo.root)];
    std::cout << "  candidate " << k << ": root (" << root.x << ',' << root.y
              << "), estimated mismatch " << c.mismatchEstimate
              << ", estimated length " << c.totalEstimatedLength << '\n';
  }

  // Stage B: run the whole flow on a chip containing that cluster and
  // watch the final lengths match.
  chip::Chip demo;
  demo.name = "lm-demo";
  demo.routingGrid = grid::Grid(28, 28);
  demo.delta = 1;
  const char* seq = "0110";
  int id = 0;
  for (const Point p : sinks)
    demo.valves.push_back({id++, p, chip::ActivationSequence(seq)});
  demo.pins = {{0, {0, 14}}, {1, {27, 14}}, {2, {14, 0}}, {3, {14, 27}}};
  demo.givenClusters = {{{0, 1, 2, 3}, true}};

  const auto result = core::routeChip(demo);
  std::cout << '\n' << core::describeResult(result);
  const auto& cluster = result.clusters.front();
  std::cout << "final channel lengths from pin " << cluster.pin << ':';
  for (const auto l : cluster.valveLengths) std::cout << ' ' << l;
  std::cout << "\nspread = " << cluster.lengthSpread() << " (delta = " << demo.delta
            << ") -> " << (cluster.lengthMatched ? "MATCHED" : "not matched") << '\n';
  return cluster.lengthMatched && result.complete ? 0 : 1;
}
